//! Sharded domain decomposition of the wind tunnel, bit-identical to the
//! single-domain engine for **any** shard count.
//!
//! The paper ran this simulation by mapping particles to (virtual)
//! processors on the Connection Machine; the modern equivalent is a small
//! number of coarse shards, each owning a *column block* of the tunnel.
//! [`ShardedSimulation`] partitions the grid at column boundaries and
//! gives every shard its own particle columns, sort scratch and segment
//! bounds; per-particle `XorShift32` streams travel with their particles,
//! so a shard's random draws are exactly the draws the canonical engine
//! would have made for those particles.
//!
//! # The determinism invariant
//!
//! > *Every shard's particle array is, at every step boundary, exactly the
//! > canonical sorted array restricted to the cells that shard owns — in
//! > canonical order.*
//!
//! Everything else follows from maintaining that subsequence invariant:
//!
//! * **Move** runs per shard with the sort-key pack disabled; per-particle
//!   arithmetic and RNG draws are position-independent, and the shared
//!   surface-flux window uses the same relaxed-atomic discipline as the
//!   field accumulators, so concurrent shards never race on a sum that
//!   feeds back into the trajectory.
//! * **Migration** is an explicit deterministic exchange phase: each
//!   source shard walks its array in order and routes every particle by
//!   the column block that owns its *post-move* cell; each destination
//!   then k-way-merges its incoming lists keyed by the particles'
//!   *previous* (pre-move, sorted) cell.  Previous cells partition across
//!   shards, so the merge has a unique total order — concatenation in any
//!   other order would scramble the stable sort's tie-breaking and change
//!   the trajectory.
//! * **Sort** then runs per shard with the *global* cell keys and key
//!   width.  Because the input order equals the canonical order restricted
//!   to the shard, the stable radix sort emits the canonical order
//!   restricted to the shard: the invariant is reproduced.
//! * **Collide** needs one global datum: the even/odd parity of each
//!   segment's *global* start index (the canonical pairing rule).  A k-way
//!   merge of all shards' segment tables by cell yields a running global
//!   prefix, and [`crate::collide::select_and_collide_with_parity`]
//!   accepts the resulting per-segment parities in place of the local
//!   `bounds[s] & 1`.
//! * **Plunger refill** (the one genuinely global boundary event) takes a
//!   canonical census: the post-move reservoir-parked slots of all shards,
//!   merged by previous cell — the exact array order
//!   [`crate::boundary`]'s single-domain refill scans.
//!
//! The integration suite pins the contract: `shard_counts_agree_bitwise`
//! (proptest over seeds, bodies and RNG modes) and
//! `registry_scenarios_are_shard_count_invariant` assert equal
//! [`Simulation::state_hash`] across shard counts {1, 2, 4};
//! `sharded_checkpoint_resumes_at_any_shard_count` pins save-at-S /
//! resume-at-S′.  The single-shard path stays the executable spec the
//! same way `PipelineMode::TwoStep` pins the fused pipeline: [`Engine`]
//! routes `shards <= 1` to the untouched [`Simulation`].
//!
//! # Weighted repartition
//!
//! The radix sort's segment bounds are a free per-cell census.  Before
//! each exchange the engine folds them into per-column flow loads; when
//! the heaviest shard exceeds [`REPARTITION_THRESHOLD`] × the mean, the
//! column cuts are re-drawn by balanced prefix sums.  Because ownership is
//! only consulted *during* the exchange (whose merge is keyed by previous
//! cells under the invariant, not by the new cuts), moving a cut is free —
//! it just reroutes the exchange that was about to run anyway — and has no
//! effect on the trajectory, only on balance.
//!
//! # Threaded execution
//!
//! [`crate::config::ExecMode`] selects how the per-shard phases run:
//! `Serial` steps every shard on the coordinator thread (the executable
//! spec), `Threaded` fans each phase out over scoped worker threads,
//! joining at the four existing coordinator barriers — the census merge,
//! the cross-shard exchange, the global sort-budget decision and the
//! segment-parity prefix.  Determinism survives because phase work only
//! touches shard-private state (plus exact integer-atomic accumulators)
//! and every trajectory-bearing reduction happens on the coordinator in
//! shard-index order; `tests/tests/shard_exec.rs` pins Serial ≡ Threaded
//! bit-identity across shard × worker matrices.  Worker panics surface as
//! a typed [`exec::ShardExecError`] from [`ShardedSimulation::try_step`]
//! instead of unwinding through (or aborting) the coordinator.
//!
//! # Checkpoints
//!
//! [`ShardedSimulation::save_state`] writes the canonical sections
//! (identical bytes to the single-domain save — the sync is a pure merge
//! that consumes no RNG) plus an advisory `SHRD` manifest: shard count,
//! column cuts, per-shard populations, repartition count.  Resume scatters
//! the canonical state under *any* shard count and warm-starts the stored
//! cuts only when the counts match, so a checkpoint taken at S shards
//! resumes bit-exactly at S′ — including S′ = 1 via [`Simulation::resume`],
//! which skips the unknown section.  The manifest is outside both the
//! config fingerprint and the state hash, exactly like `PipelineMode`.

// The per-shard phase executor (scoped worker threads + typed panic
// propagation) is a child module for the same reason this module is a
// child of `engine`: its closures borrow the private `Shard` state.
#[path = "shard_exec.rs"]
pub mod exec;

use super::{FaultTarget, MonoBody, Simulation};
use crate::boundary::BoundaryParams;
use crate::collide;
use crate::config::{ConfigError, SimConfig, SortMode, WallModel};
use crate::diag::{Diagnostics, StepTimings, Substep};
use crate::movephase::{self, MoveOutcome, MoveScratch};
use crate::particles::ParticleStore;
use crate::sample::{FieldAccumulator, SampledField};
use crate::sortstep::{self, SortWorkspace};
use crate::surface::SurfaceField;
use dsmc_fixed::Fx;
use dsmc_geom::{Body, PlungerEvent};
use dsmc_state::{Reader, StateError, Writer};
use exec::{ShardExec, ShardExecError};
use std::path::Path;
use std::time::{Duration, Instant};

/// Sharded-run manifest: shard count, column cuts, per-shard populations,
/// repartition count.  Advisory (execution layout, not physics): resume
/// ignores it except to warm-start the cuts at a matching shard count.
const SEC_SHRD: [u8; 4] = *b"SHRD";

/// Repartition trigger: re-draw the column cuts when the heaviest shard's
/// flow population exceeds this multiple of the mean.  1.25 keeps
/// repartitions rare in settled flows while still reacting to the
/// pile-up behind a forming shock (the failure mode of static equal-cell
/// splits in the load-balancing DSMC literature).
pub const REPARTITION_THRESHOLD: f64 = 1.25;

/// The column-block ownership map: shard `k` owns tunnel columns
/// `cuts[k] .. cuts[k+1]` (and the last shard additionally owns the
/// reservoir box, which keeps the reservoir's relaxation segments — and
/// the plunger refill census — from straddling a cut).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardLayout {
    /// `n_shards + 1` ascending column cuts: `cuts[0] == 0`,
    /// `cuts[n_shards] == tunnel_w`.
    cuts: Vec<u32>,
    tunnel_w: u32,
    res_base: u32,
}

impl ShardLayout {
    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.cuts.len() - 1
    }

    /// The ascending column cuts (`n_shards + 1` entries, first 0, last
    /// the tunnel width).
    pub fn cuts(&self) -> &[u32] {
        &self.cuts
    }

    /// The shard owning `cell`.  Flow cells are row-major (`iy * w + ix`),
    /// so a column block owns a *strided* cell set; reservoir cells all
    /// belong to the last shard.
    #[inline]
    pub fn owner(&self, cell: u32) -> usize {
        if cell >= self.res_base {
            return self.n_shards() - 1;
        }
        let col = cell % self.tunnel_w;
        self.cuts[1..].partition_point(|&c| c <= col)
    }
}

/// Deterministic balanced cuts from per-column loads: cut `k` is placed by
/// the greedy prefix rule at the column where the running load first
/// exceeds `k/n` of the total, clamped so every shard keeps at least one
/// column.
fn balanced_cuts(col_load: &[u64], n_shards: usize) -> Vec<u32> {
    let w = col_load.len();
    debug_assert!(n_shards >= 1 && n_shards <= w);
    let total: u64 = col_load.iter().sum();
    let mut cuts = Vec::with_capacity(n_shards + 1);
    cuts.push(0u32);
    let mut acc: u64 = 0;
    let mut col = 0usize;
    for k in 1..n_shards {
        let target = (total as u128 * k as u128 / n_shards as u128) as u64;
        let min_col = cuts[k - 1] as usize + 1;
        let max_col = w - (n_shards - k);
        while col < min_col {
            acc += col_load[col];
            col += 1;
        }
        while col < max_col && acc + col_load[col] <= target {
            acc += col_load[col];
            col += 1;
        }
        cuts.push(col as u32);
    }
    cuts.push(w as u32);
    cuts
}

/// Uniform cuts (the cold-start fallback when there is no census yet).
fn uniform_cuts(w: usize, n_shards: usize) -> Vec<u32> {
    (0..=n_shards).map(|k| (k * w / n_shards) as u32).collect()
}

/// One shard: its slice of the particle population plus private sort
/// machinery.  `parts` is always the canonical sorted array restricted to
/// the shard's owned cells (the module-level invariant); `bounds`,
/// `seg_cell` and `seg_parity` describe its segments under the *global*
/// cell ids.
struct Shard {
    parts: ParticleStore,
    bounds: Vec<u32>,
    order: Vec<u32>,
    /// Cell id of each segment of the last sort (the "previous cells" the
    /// exchange merges by).
    seg_cell: Vec<u32>,
    /// Global even/odd parity of each segment's canonical start index —
    /// what makes per-shard pairing identical to canonical pairing.
    seg_parity: Vec<u32>,
    sort_ws: SortWorkspace,
    move_scratch: MoveScratch,
    decisions: Vec<u8>,
}

impl Shard {
    fn new(total_cells: usize) -> Self {
        let mut move_scratch = MoveScratch::new();
        move_scratch.reserve_segments(total_cells + 1);
        Self {
            parts: ParticleStore::default(),
            bounds: Vec::new(),
            order: Vec::new(),
            seg_cell: Vec::new(),
            seg_parity: Vec::new(),
            sort_ws: SortWorkspace::new(),
            move_scratch,
            decisions: Vec::new(),
        }
    }

    fn n_segments(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }
}

fn clear_store(p: &mut ParticleStore) {
    p.x.clear();
    p.y.clear();
    p.u.clear();
    p.v.clear();
    p.w.clear();
    p.r1.clear();
    p.r2.clear();
    p.perm.clear();
    p.rng.clear();
    p.cell.clear();
}

/// Rebuild a shard's segment table from its (cell-sorted) array — used
/// after a scatter, where the canonical order guarantees sortedness.
fn rebuild_segments(shard: &mut Shard) {
    let cells = &shard.parts.cell;
    shard.bounds.clear();
    shard.seg_cell.clear();
    shard.order.clear();
    if cells.is_empty() {
        return;
    }
    shard.bounds.push(0);
    shard.seg_cell.push(cells[0]);
    for i in 1..cells.len() {
        if cells[i] != cells[i - 1] {
            shard.bounds.push(i as u32);
            shard.seg_cell.push(cells[i]);
        }
    }
    shard.bounds.push(cells.len() as u32);
}

/// One shard's key-less move sweep, with the same monomorphised boundary
/// parameters the canonical engine builds (`Simulation::move_phase_mono`).
fn move_one<B: Body>(base: &Simulation, shard: &mut Shard, body: &B) -> MoveOutcome {
    let u_drift = Fx::from_f64(base.fs.u_inf());
    let rect_half_raw = Fx::from_f64(base.fs.sigma() * 3f64.sqrt()).raw();
    let sigma_wall_raw = match base.cfg.walls {
        WallModel::Specular => 0,
        WallModel::Diffuse { t_wall } => Fx::from_f64(base.fs.sigma() * t_wall.sqrt()).raw(),
    };
    let params = BoundaryParams {
        tunnel: &base.tunnel,
        body,
        res_base: base.res_base,
        res: base.res,
        u_drift,
        rect_half_raw,
        n_inf: base.cfg.n_per_cell,
        walls: base.cfg.walls,
        sigma_wall_raw,
        surface: base.surf_sampler.as_ref(),
    };
    movephase::move_phase(
        &mut shard.parts,
        &params,
        &base.classifier,
        &base.plunger,
        &shard.bounds,
        base.res_w_fx,
        base.res_h_fx,
        None,
        &mut shard.move_scratch,
    )
}

/// The sharded engine: a [`Simulation`] decomposed into column-block
/// shards, stepping bit-identically to the canonical single-domain run
/// (see the module docs for the invariant and the phase-by-phase
/// argument).
///
/// The embedded `base` holds everything global — config, geometry,
/// kinetics tables, classifier, plunger, counters, open sampling windows —
/// while its own particle columns act as the *canonical view*, refreshed
/// lazily by a pure merge whenever a caller needs whole-population state
/// ([`ShardedSimulation::canonical`], hashing, checkpointing,
/// diagnostics).
pub struct ShardedSimulation {
    base: Simulation,
    layout: ShardLayout,
    shards: Vec<Shard>,
    /// Per-destination rebuild buffers for the exchange (swapped with the
    /// shard stores each step, so steady state allocates nothing).
    inbox: Vec<ParticleStore>,
    /// `routes[src][dst]`: (previous cell, source index) of every particle
    /// migrating src → dst, in source order.
    routes: Vec<Vec<Vec<(u32, u32)>>>,
    /// Per-destination previous-order structure recorded while the
    /// exchange merge drains: each drained equal-prev-cell run is one
    /// segment of the rebuilt array (`exch_bounds[d]` has the run starts
    /// plus a length sentinel, `exch_cells[d]` the runs' previous cells,
    /// strictly ascending).  This is exactly the `(prev_bounds,
    /// prev_cells)` contract the incremental rank repairs against.
    exch_bounds: Vec<Vec<u32>>,
    exch_cells: Vec<Vec<u32>>,
    /// Per-shard cursors for the k-way merges.
    merge_pos: Vec<usize>,
    /// Plunger-refill census: (shard, index) of reservoir-parked slots in
    /// canonical order.
    census: Vec<(u32, u32)>,
    /// Per-column flow loads from the last sort's segment bounds.
    col_load: Vec<u64>,
    /// True when the shards have stepped past the canonical view.
    dirty: bool,
    repartitions: u64,
    /// The per-shard phase executor (resolved from `cfg.exec`).
    exec: ShardExec,
}

impl ShardedSimulation {
    /// Build and initialise a sharded simulation.  `n_shards` is clamped
    /// to `[1, tunnel width]`.
    ///
    /// Panics on an invalid configuration; services that must survive bad
    /// input use [`ShardedSimulation::try_new`].
    pub fn new(cfg: SimConfig, n_shards: usize) -> Self {
        Self::try_new(cfg, n_shards).unwrap_or_else(|e| panic!("invalid SimConfig: {e}"))
    }

    /// Build and initialise a sharded simulation, reporting configuration
    /// problems as a typed error.
    pub fn try_new(cfg: SimConfig, n_shards: usize) -> Result<Self, ConfigError> {
        Ok(Self::from_simulation(Simulation::try_new(cfg)?, n_shards))
    }

    /// Decompose an existing simulation (at a step boundary) into
    /// `n_shards` column blocks.  The initial cuts are weighted by the
    /// current per-column populations, so a shock that already exists is
    /// balanced from step one.
    pub fn from_simulation(base: Simulation, n_shards: usize) -> Self {
        let w = base.tunnel.width as usize;
        let n_shards = n_shards.clamp(1, w);
        let mut col_load = vec![0u64; w];
        let n_seg = base.bounds.len().saturating_sub(1);
        for j in 0..n_seg {
            let c = base.parts.cell[base.bounds[j] as usize];
            if c < base.res_base {
                col_load[(c as usize) % w] += (base.bounds[j + 1] - base.bounds[j]) as u64;
            }
        }
        let cuts = if col_load.iter().all(|&l| l == 0) {
            uniform_cuts(w, n_shards)
        } else {
            balanced_cuts(&col_load, n_shards)
        };
        let layout = ShardLayout {
            cuts,
            tunnel_w: base.tunnel.width,
            res_base: base.res_base,
        };
        let total_cells = (base.res_base + base.res.total()) as usize;
        let exec = ShardExec::new(base.cfg.exec, n_shards);
        let mut sharded = Self {
            base,
            layout,
            shards: (0..n_shards).map(|_| Shard::new(total_cells)).collect(),
            inbox: (0..n_shards).map(|_| ParticleStore::default()).collect(),
            routes: vec![vec![Vec::new(); n_shards]; n_shards],
            exch_bounds: vec![Vec::new(); n_shards],
            exch_cells: vec![Vec::new(); n_shards],
            merge_pos: Vec::new(),
            census: Vec::new(),
            col_load,
            dirty: false,
            repartitions: 0,
            exec,
        };
        sharded.scatter();
        sharded
    }

    /// Rebuild a sharded simulation from a snapshot under **any** shard
    /// count — the snapshot's canonical sections gate exactly as in
    /// [`Simulation::resume`], and the advisory `SHRD` manifest (when
    /// present *and* taken at the same shard count) warm-starts the column
    /// cuts.  Bit-identity never depends on the manifest.
    pub fn resume(cfg: SimConfig, bytes: &[u8], n_shards: usize) -> Result<Self, StateError> {
        let base = Simulation::resume(cfg, bytes)?;
        let mut sharded = Self::from_simulation(base, n_shards);
        let r = Reader::new(bytes)?;
        if r.has_section(SEC_SHRD) {
            let mut c = r.section(SEC_SHRD)?;
            let stored_shards = c.u32()? as usize;
            let cuts = c.vec_u32()?;
            let pops = c.vec_u32()?;
            let repartitions = c.u64()?;
            c.done()?;
            let valid = stored_shards >= 1
                && cuts.len() == stored_shards + 1
                && pops.len() == stored_shards
                && cuts.first() == Some(&0)
                && cuts.last() == Some(&sharded.base.tunnel.width)
                && cuts.windows(2).all(|p| p[0] < p[1]);
            if !valid {
                return Err(StateError::Malformed("sharded manifest inconsistent"));
            }
            sharded.repartitions = repartitions;
            if stored_shards == sharded.layout.n_shards() {
                sharded.layout.cuts = cuts;
                sharded.scatter();
            }
        }
        Ok(sharded)
    }

    /// [`ShardedSimulation::resume`] from a file.
    pub fn resume_from_file(
        cfg: SimConfig,
        path: impl AsRef<Path>,
        n_shards: usize,
    ) -> Result<Self, StateError> {
        let bytes = std::fs::read(path)?;
        Self::resume(cfg, &bytes, n_shards)
    }

    /// Scatter the canonical view into the shards by cell ownership.  A
    /// pure copy — no RNG is consumed, no particle is reordered — so the
    /// subsequence invariant holds by construction.
    fn scatter(&mut self) {
        for shard in &mut self.shards {
            clear_store(&mut shard.parts);
        }
        {
            let p = &self.base.parts;
            let layout = &self.layout;
            let shards = &mut self.shards;
            for i in 0..p.len() {
                let d = layout.owner(p.cell[i]);
                shards[d].parts.push(
                    p.x[i],
                    p.y[i],
                    p.velocity5(i),
                    p.perm[i],
                    p.rng[i],
                    p.cell[i],
                );
            }
        }
        for shard in &mut self.shards {
            rebuild_segments(shard);
        }
        self.dirty = false;
    }

    /// Merge the shards back into the canonical view (pure copy, no RNG).
    /// Segments are merged by cell — ownership makes the order total — so
    /// the rebuilt columns and bounds are exactly what the single-domain
    /// sort would have produced.
    fn sync_canonical(&mut self) {
        if !self.dirty {
            return;
        }
        let s_count = self.shards.len();
        let total: usize = self.shards.iter().map(|s| s.parts.len()).sum();
        let base = &mut self.base;
        let shards = &self.shards;
        clear_store(&mut base.parts);
        base.parts.x.reserve(total);
        base.bounds.clear();
        base.bounds.push(0);
        self.merge_pos.clear();
        self.merge_pos.resize(s_count, 0);
        loop {
            let mut best: Option<(u32, usize)> = None;
            for (s, shard) in shards.iter().enumerate() {
                let j = self.merge_pos[s];
                if j < shard.n_segments() {
                    let c = shard.seg_cell[j];
                    if best.is_none_or(|(bc, _)| c < bc) {
                        best = Some((c, s));
                    }
                }
            }
            let Some((_, s)) = best else { break };
            let j = self.merge_pos[s];
            let p = &shards[s].parts;
            let lo = shards[s].bounds[j] as usize;
            let hi = shards[s].bounds[j + 1] as usize;
            base.parts.x.extend_from_slice(&p.x[lo..hi]);
            base.parts.y.extend_from_slice(&p.y[lo..hi]);
            base.parts.u.extend_from_slice(&p.u[lo..hi]);
            base.parts.v.extend_from_slice(&p.v[lo..hi]);
            base.parts.w.extend_from_slice(&p.w[lo..hi]);
            base.parts.r1.extend_from_slice(&p.r1[lo..hi]);
            base.parts.r2.extend_from_slice(&p.r2[lo..hi]);
            base.parts.perm.extend_from_slice(&p.perm[lo..hi]);
            base.parts.rng.extend_from_slice(&p.rng[lo..hi]);
            base.parts.cell.extend_from_slice(&p.cell[lo..hi]);
            base.bounds.push(base.parts.len() as u32);
            self.merge_pos[s] += 1;
        }
        debug_assert_eq!(base.parts.len(), total, "merge lost particles");
        debug_assert!(base.parts.check_coherent());
        self.dirty = false;
    }

    /// The canonical single-domain view of the current state (syncing the
    /// shards first if they have stepped past it).  This is what sentinels
    /// check, protocols probe and analysis tools read.
    pub fn canonical(&mut self) -> &Simulation {
        self.sync_canonical();
        &self.base
    }

    /// Advance one time step — the same four sub-steps as
    /// [`Simulation::step`], each decomposed per shard (see module docs).
    ///
    /// Under [`crate::config::ExecMode::Threaded`] a shard-worker panic
    /// is converted into the returned [`ShardExecError`]; the simulation
    /// is then in an unspecified mid-step state and should be discarded
    /// (supervisors recover from the last checkpoint).  Under `Serial`
    /// worker panics unwind normally and this never returns `Err`.
    pub fn try_step(&mut self) -> Result<(), ShardExecError> {
        self.dirty = true;

        // 1+2) Per-shard key-less move sweeps, then the global boundary
        // bookkeeping exactly as the canonical front half orders it.
        let t = Instant::now();
        let withdraw = self.base.plunger.will_withdraw();
        let (exited, max_speed, by_kind, movers) = self.move_shards()?;
        let mut movers_over_budget = false;
        if !withdraw {
            // Same ledger as the canonical engine: per-particle sums, so
            // the mover fraction is independent of the decomposition.
            let pop = self.shard_populations().iter().sum::<usize>();
            self.base.mover_sum += movers as u64;
            self.base.mover_particle_sum += pop as u64;
            // The global budget decision, made once from the summed sweep
            // counts (exchange migrates particles between shards but never
            // changes a cell index, so the sum is exact post-exchange too).
            movers_over_budget = movers > (self.base.mover_threshold * pop as f64) as u32;
        }
        self.base.exited += exited as u64;
        for (acc, n) in self.base.move_by_kind.iter_mut().zip(by_kind) {
            *acc += n;
        }
        self.base.track_halo(max_speed);
        if let Some(acc) = &self.base.surf_sampler {
            acc.bump_step();
        }
        if let PlungerEvent::Withdrawn { void_end } = self.base.plunger.advance() {
            debug_assert!(withdraw, "will_withdraw must predict the advance");
            self.base.plunger_cycles += 1;
            let introduced = self.refill_void_sharded(void_end);
            self.base.introduced += introduced as u64;
        }
        self.base.timings.add(Substep::Move, t.elapsed());

        // 3a) Repartition check (free: cuts only steer the exchange that
        // runs next), the migration exchange, then per-shard sorts.
        // Withdrawal, just-repartitioned and over-budget steps pin the
        // full radix path, like the canonical engine's decision.
        let t = Instant::now();
        let repartitioned = self.maybe_repartition();
        self.exchange();
        self.sort_shards(withdraw || repartitioned || movers_over_budget)?;
        self.base.timings.add(Substep::Sort, t.elapsed());

        // 3b+4) Global pairing parity, then per-shard select + collide.
        // Collision RNG streams travel with the particles and the global
        // parities were fixed above, so the phase is shard-private; the
        // candidate/collision ledgers reduce from the returned outcomes
        // in shard order.
        let t = Instant::now();
        self.compute_parities();
        let mut cand = 0u64;
        let mut cols = 0u64;
        let mut select_cpu = Duration::ZERO;
        let mut collide_cpu = Duration::ZERO;
        {
            let base = &self.base;
            let outs = self
                .exec
                .run_phase(&mut self.shards, "collide", |_i, shard| {
                    collide::select_and_collide_with_parity(
                        &mut shard.parts,
                        &shard.bounds,
                        &base.sel,
                        base.rounding,
                        base.rng_mode,
                        &mut shard.decisions,
                        Some(&shard.seg_parity),
                    )
                })?;
            for out in outs {
                cand += out.stats.candidates;
                cols += out.stats.collisions;
                select_cpu += out.select;
                collide_cpu += out.collide;
            }
        }
        self.base.candidates += cand;
        self.base.collisions += cols;
        let wall = t.elapsed();
        let cpu_total = select_cpu + collide_cpu;
        let select_wall = if cpu_total.is_zero() {
            wall / 2
        } else {
            wall.mul_f64(select_cpu.as_secs_f64() / cpu_total.as_secs_f64())
        };
        self.base.timings.add(Substep::Select, select_wall);
        self.base
            .timings
            .add(Substep::Collide, wall.saturating_sub(select_wall));

        // Optional sampling pass: per-shard partial sums into the shared
        // accumulator, one step bump.  Cells partition across shards and
        // the sums are integer atomics, so concurrent workers are exact.
        if self.base.sampler.is_some() {
            let t = Instant::now();
            let base = &self.base;
            if let Some(acc) = &base.sampler {
                self.exec
                    .run_phase(&mut self.shards, "sample", |_i, shard| {
                        acc.accumulate_partial(&shard.parts, &shard.bounds, base.res_base);
                    })?;
            }
            if let Some(acc) = self.base.sampler.as_mut() {
                acc.bump_step();
            }
            self.base.timings.add(Substep::Sample, t.elapsed());
        }

        self.base.steps += 1;
        self.base.timings.steps += 1;
        Ok(())
    }

    /// Advance one time step, panicking on a shard-worker failure (the
    /// non-Result convenience wrapper around
    /// [`ShardedSimulation::try_step`]).
    pub fn step(&mut self) {
        self.try_step().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// The per-shard move sweeps, monomorphised over the body like the
    /// canonical engine.  Returns (exited, max observed speed, dispatch
    /// counts) summed/maxed across shards — per-particle sums reduced in
    /// shard order from the workers' outcomes, so the totals are
    /// independent of both the decomposition and the scheduling.
    fn move_shards(&mut self) -> Result<(u32, u32, [u64; 4], u32), ShardExecError> {
        let mono = self.base.body_mono.clone();
        let base = &self.base;
        let outs = self
            .exec
            .run_phase(&mut self.shards, "move", |_i, shard| match &mono {
                MonoBody::None(b) => move_one(base, shard, b),
                MonoBody::Wedge(b) => move_one(base, shard, b),
                MonoBody::Step(b) => move_one(base, shard, b),
                MonoBody::Plate(b) => move_one(base, shard, b),
                MonoBody::Cylinder(b) => move_one(base, shard, b),
            })?;
        let mut exited = 0u32;
        let mut max_speed = 0u32;
        let mut by_kind = [0u64; 4];
        let mut movers = 0u32;
        for out in outs {
            exited += out.exited;
            max_speed = max_speed.max(out.max_speed_raw);
            movers += out.movers;
            for (acc, n) in by_kind.iter_mut().zip(out.by_kind) {
                *acc += n;
            }
        }
        Ok((exited, max_speed, by_kind, movers))
    }

    /// The sharded plunger refill — bit-identical to
    /// `boundary::refill_void` because the census is taken in canonical
    /// array order: the shards' pre-move segments merged by cell (previous
    /// cells partition across shards), scanning each segment's slots for
    /// post-move reservoir parking.  Selection arithmetic and the
    /// per-particle x/y draws then match the single-domain code verbatim.
    fn refill_void_sharded(&mut self, void_end: Fx) -> u32 {
        let need = (self.base.cfg.n_per_cell * void_end.to_f64() * self.base.tunnel.height as f64)
            .round() as usize;
        let res_base = self.base.res_base;
        let s_count = self.shards.len();
        self.census.clear();
        self.merge_pos.clear();
        self.merge_pos.resize(s_count, 0);
        loop {
            let mut best: Option<(u32, usize)> = None;
            for s in 0..s_count {
                let j = self.merge_pos[s];
                if j < self.shards[s].n_segments() {
                    let c = self.shards[s].seg_cell[j];
                    if best.is_none_or(|(bc, _)| c < bc) {
                        best = Some((c, s));
                    }
                }
            }
            let Some((_, s)) = best else { break };
            let j = self.merge_pos[s];
            let shard = &self.shards[s];
            for i in shard.bounds[j]..shard.bounds[j + 1] {
                if shard.parts.cell[i as usize] >= res_base {
                    self.census.push((s as u32, i));
                }
            }
            self.merge_pos[s] += 1;
        }
        let avail = self.census.len();
        let take = need.min(avail);
        if take == 0 {
            return 0;
        }
        let stride = (avail as f64 / take as f64).max(1.0);
        let h = self.base.tunnel.height as f64;
        let void_f = void_end.to_f64();
        for k in 0..take {
            let (s, i) = self.census[(k as f64 * stride) as usize % avail];
            let parts = &mut self.shards[s as usize].parts;
            let i = i as usize;
            let rng = &mut parts.rng[i];
            let x = Fx::from_f64(void_f * rng.next_f64());
            let y = Fx::from_f64((h * rng.next_f64()).min(h - 1e-6));
            parts.x[i] = x;
            parts.y[i] = y;
            // Velocities stay as relaxed in the reservoir: they *are*
            // the freestream sample.
            parts.cell[i] = self.base.tunnel.cell_index(x, y);
        }
        take as u32
    }

    /// Fold the last sort's segment bounds into per-column flow loads and
    /// re-draw the cuts if the measured imbalance exceeds the threshold.
    /// Runs *before* the exchange, whose merge is keyed by previous cells
    /// under the old sorted order — so new cuts reroute that exchange for
    /// free and never touch the trajectory.  Returns whether the cuts
    /// actually changed — the signal that pins this step's sorts to the
    /// full radix path.
    fn maybe_repartition(&mut self) -> bool {
        let s_count = self.shards.len();
        if s_count <= 1 {
            return false;
        }
        let w = self.base.tunnel.width as usize;
        self.col_load.clear();
        self.col_load.resize(w, 0);
        for shard in &self.shards {
            for j in 0..shard.n_segments() {
                let c = shard.seg_cell[j];
                if c < self.base.res_base {
                    let len = (shard.bounds[j + 1] - shard.bounds[j]) as u64;
                    self.col_load[(c as usize) % w] += len;
                }
            }
        }
        let total: u64 = self.col_load.iter().sum();
        if total == 0 {
            return false;
        }
        let mut max_load = 0u64;
        for s in 0..s_count {
            let lo = self.layout.cuts[s] as usize;
            let hi = self.layout.cuts[s + 1] as usize;
            max_load = max_load.max(self.col_load[lo..hi].iter().sum());
        }
        if (max_load as f64) <= REPARTITION_THRESHOLD * (total as f64 / s_count as f64) {
            return false;
        }
        let cuts = balanced_cuts(&self.col_load, s_count);
        if cuts != self.layout.cuts {
            self.layout.cuts = cuts;
            self.repartitions += 1;
            return true;
        }
        false
    }

    /// The migration exchange: route every particle by the owner of its
    /// post-move cell, then rebuild each destination by a k-way merge of
    /// its incoming lists keyed by previous cell.  Each shard is fully
    /// rebuilt every step (self-migrants included), which is what
    /// preserves the canonical tie-order the stable sort depends on.
    fn exchange(&mut self) {
        let s_count = self.shards.len();
        let shards = &self.shards;
        let layout = &self.layout;
        let routes = &mut self.routes;
        for per_src in routes.iter_mut() {
            for list in per_src.iter_mut() {
                list.clear();
            }
        }
        for (s, shard) in shards.iter().enumerate() {
            let per_dst = &mut routes[s];
            for j in 0..shard.n_segments() {
                let pc = shard.seg_cell[j];
                for i in shard.bounds[j]..shard.bounds[j + 1] {
                    let dst = layout.owner(shard.parts.cell[i as usize]);
                    per_dst[dst].push((pc, i));
                }
            }
        }
        let inbox = &mut self.inbox;
        let pos = &mut self.merge_pos;
        for (d, dst_store) in inbox.iter_mut().enumerate() {
            clear_store(dst_store);
            let eb = &mut self.exch_bounds[d];
            let ec = &mut self.exch_cells[d];
            eb.clear();
            ec.clear();
            pos.clear();
            pos.resize(s_count, 0);
            loop {
                let mut best: Option<(u32, usize)> = None;
                for s in 0..s_count {
                    if pos[s] < routes[s][d].len() {
                        let c = routes[s][d][pos[s]].0;
                        if best.is_none_or(|(bc, _)| c < bc) {
                            best = Some((c, s));
                        }
                    }
                }
                let Some((cell, s)) = best else { break };
                // The run about to drain becomes one previous-order
                // segment of the rebuilt array.
                eb.push(dst_store.len() as u32);
                ec.push(cell);
                // Drain the whole equal-cell run from this source: the
                // run's previous cell lives in exactly one shard, so no
                // other source can contribute to it.
                let list = &routes[s][d];
                let p = &shards[s].parts;
                while pos[s] < list.len() && list[pos[s]].0 == cell {
                    let i = list[pos[s]].1 as usize;
                    dst_store.push(
                        p.x[i],
                        p.y[i],
                        p.velocity5(i),
                        p.perm[i],
                        p.rng[i],
                        p.cell[i],
                    );
                    pos[s] += 1;
                }
            }
            eb.push(dst_store.len() as u32);
        }
        for (shard, dst_store) in self.shards.iter_mut().zip(self.inbox.iter_mut()) {
            std::mem::swap(&mut shard.parts, dst_store);
        }
    }

    /// Per-shard sorts with the *global* cell keys, then refresh each
    /// shard's segment-cell table.  Stability + the subsequence invariant
    /// on the input order make each output the canonical order restricted
    /// to the shard.
    ///
    /// Ordinary incremental-mode steps repair the exchange-recorded
    /// previous order instead of re-ranking from scratch; `force_full`
    /// (withdrawal, just-repartitioned, or over-the-mover-budget steps —
    /// the budget decision is the caller's, from the summed sweep counts)
    /// pins the full radix path.  Both paths consume the per-shard jitter
    /// draws identically and produce bit-identical orders.
    ///
    /// Each worker returns which rank path its shard took (`None` for an
    /// empty shard); the path counters reduce on the coordinator in shard
    /// order, so the ledgers match the serial executor exactly.
    fn sort_shards(&mut self, force_full: bool) -> Result<(), ShardExecError> {
        let base = &self.base;
        let total_cells = base.res_base + base.res.total();
        let incremental = !force_full && base.cfg.sort_mode == SortMode::Incremental;
        let exch_bounds = &self.exch_bounds;
        let exch_cells = &self.exch_cells;
        let outs = self.exec.run_phase(&mut self.shards, "sort", |i, shard| {
            if shard.parts.is_empty() {
                shard.bounds.clear();
                shard.order.clear();
                shard.seg_cell.clear();
                return None;
            }
            let took = incremental
                && sortstep::sort_particles_fused_incremental(
                    &mut shard.parts,
                    &base.tunnel,
                    base.res_base,
                    base.res,
                    base.cfg.jitter_bits,
                    base.key_bits,
                    base.rng_mode,
                    total_cells,
                    &exch_bounds[i],
                    &exch_cells[i],
                    &mut shard.sort_ws,
                    &mut shard.bounds,
                    &mut shard.order,
                );
            if !took && !incremental {
                sortstep::sort_particles_fused(
                    &mut shard.parts,
                    &base.tunnel,
                    base.res_base,
                    base.res,
                    base.cfg.jitter_bits,
                    base.key_bits,
                    base.rng_mode,
                    &mut shard.sort_ws,
                    &mut shard.bounds,
                    &mut shard.order,
                );
            }
            shard.seg_cell.clear();
            for j in 0..shard.bounds.len() - 1 {
                shard
                    .seg_cell
                    .push(shard.parts.cell[shard.bounds[j] as usize]);
            }
            Some(took)
        })?;
        for took in outs.into_iter().flatten() {
            if took {
                self.base.sort_incremental_steps += 1;
            } else {
                self.base.sort_full_steps += 1;
            }
        }
        Ok(())
    }

    /// Merge all shards' fresh segment tables by cell into a running
    /// global prefix, giving every local segment the even/odd parity of
    /// its canonical start index — the one global datum the pairing rule
    /// needs.
    fn compute_parities(&mut self) {
        let s_count = self.shards.len();
        for shard in &mut self.shards {
            let n_seg = shard.n_segments();
            shard.seg_parity.clear();
            shard.seg_parity.resize(n_seg, 0);
        }
        self.merge_pos.clear();
        self.merge_pos.resize(s_count, 0);
        let mut prefix: u32 = 0;
        loop {
            let mut best: Option<(u32, usize)> = None;
            for s in 0..s_count {
                let j = self.merge_pos[s];
                if j < self.shards[s].n_segments() {
                    let c = self.shards[s].seg_cell[j];
                    if best.is_none_or(|(bc, _)| c < bc) {
                        best = Some((c, s));
                    }
                }
            }
            let Some((_, s)) = best else { break };
            let j = self.merge_pos[s];
            let shard = &mut self.shards[s];
            shard.seg_parity[j] = prefix & 1;
            prefix += shard.bounds[j + 1] - shard.bounds[j];
            self.merge_pos[s] += 1;
        }
    }

    /// Serialise the canonical state sections (byte-identical to the
    /// single-domain [`Simulation::save_state`]) plus the advisory `SHRD`
    /// manifest.  Needs `&mut self` only for the lazy canonical sync —
    /// the sync is a pure merge, so saving never perturbs the trajectory.
    pub fn save_state(&mut self) -> Vec<u8> {
        self.sync_canonical();
        let mut w = Writer::new(self.base.cfg.fingerprint());
        self.base.write_state_sections(&mut w);
        {
            let mut s = w.section(SEC_SHRD);
            s.u32(self.layout.n_shards() as u32);
            s.vec_u32(&self.layout.cuts);
            let pops: Vec<u32> = self.shards.iter().map(|sh| sh.parts.len() as u32).collect();
            s.vec_u32(&pops);
            s.u64(self.repartitions);
        }
        w.finish()
    }

    /// [`ShardedSimulation::save_state`] straight to a file (atomic
    /// replacement, like the single-domain saver).
    pub fn save_state_to(&mut self, path: impl AsRef<Path>) -> Result<(), StateError> {
        let bytes = self.save_state();
        dsmc_state::store::atomic_write(path, &bytes)
    }

    /// The canonical resume-bit-identity digest — delegates to
    /// [`Simulation::state_hash`] on the synced view, so sharded and
    /// single-domain runs hash into the same space (the shard-count
    /// invariance tests compare exactly this).
    pub fn state_hash(&mut self) -> u64 {
        self.sync_canonical();
        self.base.state_hash()
    }

    /// Current physical ledgers (on the synced canonical view).
    pub fn diagnostics(&mut self) -> Diagnostics {
        self.sync_canonical();
        self.base.diagnostics()
    }

    /// Open a sampling window (fields, and surface fluxes when the body
    /// has facets) — shared across shards via relaxed-atomic sums.
    pub fn begin_sampling(&mut self) {
        self.base.begin_sampling();
    }

    /// Close the sampling window and return the averaged fields.
    pub fn finish_sampling(&mut self) -> SampledField {
        self.base.finish_sampling()
    }

    /// Close the surface window (if any) and return the reduced Cp/Cf/Ch
    /// distributions.
    pub fn finish_surface_sampling(&mut self) -> Option<SurfaceField> {
        self.base.finish_surface_sampling()
    }

    /// The open volume-field window, if any.
    pub fn field_sampler(&self) -> Option<&FieldAccumulator> {
        self.base.field_sampler()
    }

    /// Deterministically corrupt particle state (the fault-injection
    /// surface): applied on the canonical view, then re-scattered.  The
    /// corrupted trajectory is discarded on recovery, so only the
    /// sentinel-visible canonical state needs to match the single-domain
    /// fault.
    pub fn inject_fault(&mut self, target: FaultTarget, salt: u64) -> String {
        self.sync_canonical();
        let msg = self.base.inject_fault(target, salt);
        self.scatter();
        msg
    }

    /// Total number of particles (flow + reservoir), summed over shards.
    pub fn n_particles(&self) -> usize {
        self.shards.iter().map(|s| s.parts.len()).sum()
    }

    /// The configuration the simulation was built with.
    pub fn config(&self) -> &SimConfig {
        self.base.config()
    }

    /// The current column-block layout.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// How many times the weighted repartition has re-drawn the cuts.
    pub fn repartitions(&self) -> u64 {
        self.repartitions
    }

    /// Resolved shard-worker count for this run (`1` on the serial path).
    pub fn exec_workers(&self) -> usize {
        self.exec.workers()
    }

    /// Replace the column cuts (a test/experimentation hook: e.g. start
    /// maximally skewed to force the weighted repartition mid-run).  Like
    /// the repartition itself this is trajectory-neutral — the canonical
    /// view is synced, re-cut and re-scattered, a pure copy that consumes
    /// no RNG.  Returns `false` (and changes nothing) unless `cuts` has
    /// `n_shards + 1` strictly-ascending entries spanning `0..=tunnel_w`.
    pub fn set_cuts(&mut self, cuts: &[u32]) -> bool {
        let valid = cuts.len() == self.layout.n_shards() + 1
            && cuts.first() == Some(&0)
            && cuts.last() == Some(&self.base.tunnel.width)
            && cuts.windows(2).all(|p| p[0] < p[1]);
        if !valid {
            return false;
        }
        self.sync_canonical();
        self.layout.cuts = cuts.to_vec();
        self.scatter();
        true
    }

    /// Current per-shard populations (flow + reservoir).
    pub fn shard_populations(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.parts.len()).collect()
    }

    /// Accumulated per-substep wall-clock timings.
    pub fn timings(&self) -> &StepTimings {
        self.base.timings()
    }

    /// Reset the timing accumulators (e.g. after warm-up).
    pub fn reset_timings(&mut self) {
        self.base.reset_timings();
    }

    /// Rank paths taken so far, counted per shard-sort: `(incremental,
    /// full)`.  A step contributes one count per non-empty shard.
    pub fn sort_path_counts(&self) -> (u64, u64) {
        self.base.sort_path_counts()
    }

    /// Mover statistics summed over ordinary steps (see
    /// [`Simulation::mover_stats`]); per-particle sums, so identical to
    /// the canonical engine's for the same trajectory.
    pub fn mover_stats(&self) -> (u64, u64) {
        self.base.mover_stats()
    }

    /// Override the incremental rank's mover-fraction ceiling (see
    /// [`Simulation::set_mover_threshold`]).
    pub fn set_mover_threshold(&mut self, threshold: f64) {
        self.base.set_mover_threshold(threshold);
    }
}

/// Shard-count-polymorphic engine handle: `shards <= 1` runs the untouched
/// canonical [`Simulation`] (the executable spec, zero overhead), anything
/// larger runs the [`ShardedSimulation`] pinned bit-identical to it.
/// Scenario runners and the supervisor drive this enum so every protocol
/// works at any shard count.
#[allow(clippy::large_enum_variant)]
pub enum Engine {
    /// The canonical single-domain engine.
    Single(Simulation),
    /// The sharded domain-decomposition engine.
    Sharded(ShardedSimulation),
}

impl Engine {
    /// Build an engine with `n_shards` shards (`<= 1` selects the
    /// canonical single-domain path).  Panics on an invalid configuration.
    pub fn new(cfg: SimConfig, n_shards: usize) -> Self {
        Self::try_new(cfg, n_shards).unwrap_or_else(|e| panic!("invalid SimConfig: {e}"))
    }

    /// Build an engine, reporting configuration problems as a typed error.
    pub fn try_new(cfg: SimConfig, n_shards: usize) -> Result<Self, ConfigError> {
        if n_shards <= 1 {
            Ok(Engine::Single(Simulation::try_new(cfg)?))
        } else {
            Ok(Engine::Sharded(ShardedSimulation::try_new(cfg, n_shards)?))
        }
    }

    /// Resume an engine from a snapshot under `n_shards` shards — any
    /// snapshot resumes at any shard count (see
    /// [`ShardedSimulation::resume`]).
    pub fn resume(cfg: SimConfig, bytes: &[u8], n_shards: usize) -> Result<Self, StateError> {
        if n_shards <= 1 {
            Ok(Engine::Single(Simulation::resume(cfg, bytes)?))
        } else {
            Ok(Engine::Sharded(ShardedSimulation::resume(
                cfg, bytes, n_shards,
            )?))
        }
    }

    /// Shard count (1 for the single-domain path).
    pub fn n_shards(&self) -> usize {
        match self {
            Engine::Single(_) => 1,
            Engine::Sharded(s) => s.layout().n_shards(),
        }
    }

    /// Advance one time step.
    pub fn step(&mut self) {
        match self {
            Engine::Single(s) => s.step(),
            Engine::Sharded(s) => s.step(),
        }
    }

    /// Advance one time step, surfacing a sharded-worker panic as a typed
    /// [`ShardExecError`] instead of unwinding (see
    /// [`ShardedSimulation::try_step`]).  The single-domain path is
    /// inherently serial and never returns `Err`.
    pub fn try_step(&mut self) -> Result<(), ShardExecError> {
        match self {
            Engine::Single(s) => {
                s.step();
                Ok(())
            }
            Engine::Sharded(s) => s.try_step(),
        }
    }

    /// Resolved shard-worker count (`1` for the single-domain path).
    pub fn exec_workers(&self) -> usize {
        match self {
            Engine::Single(_) => 1,
            Engine::Sharded(s) => s.exec_workers(),
        }
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        match self {
            Engine::Single(s) => s.run(n),
            Engine::Sharded(s) => s.run(n),
        }
    }

    /// The canonical single-domain view of the current state (shards sync
    /// lazily).
    pub fn canonical(&mut self) -> &Simulation {
        match self {
            Engine::Single(s) => s,
            Engine::Sharded(s) => s.canonical(),
        }
    }

    /// The resume-bit-identity digest ([`Simulation::state_hash`]).
    pub fn state_hash(&mut self) -> u64 {
        match self {
            Engine::Single(s) => s.state_hash(),
            Engine::Sharded(s) => s.state_hash(),
        }
    }

    /// Serialise the complete resumable state.
    pub fn save_state(&mut self) -> Vec<u8> {
        match self {
            Engine::Single(s) => s.save_state(),
            Engine::Sharded(s) => s.save_state(),
        }
    }

    /// [`Engine::save_state`] straight to a file (atomic replacement).
    pub fn save_state_to(&mut self, path: impl AsRef<Path>) -> Result<(), StateError> {
        match self {
            Engine::Single(s) => s.save_state_to(path),
            Engine::Sharded(s) => s.save_state_to(path),
        }
    }

    /// Current physical ledgers.
    pub fn diagnostics(&mut self) -> Diagnostics {
        match self {
            Engine::Single(s) => s.diagnostics(),
            Engine::Sharded(s) => s.diagnostics(),
        }
    }

    /// Open a sampling window.
    pub fn begin_sampling(&mut self) {
        match self {
            Engine::Single(s) => s.begin_sampling(),
            Engine::Sharded(s) => s.begin_sampling(),
        }
    }

    /// Close the sampling window and return the averaged fields.
    pub fn finish_sampling(&mut self) -> SampledField {
        match self {
            Engine::Single(s) => s.finish_sampling(),
            Engine::Sharded(s) => s.finish_sampling(),
        }
    }

    /// Close the surface window (if any).
    pub fn finish_surface_sampling(&mut self) -> Option<SurfaceField> {
        match self {
            Engine::Single(s) => s.finish_surface_sampling(),
            Engine::Sharded(s) => s.finish_surface_sampling(),
        }
    }

    /// The open volume-field window, if any.
    pub fn field_sampler(&self) -> Option<&FieldAccumulator> {
        match self {
            Engine::Single(s) => s.field_sampler(),
            Engine::Sharded(s) => s.field_sampler(),
        }
    }

    /// Deterministically corrupt particle state (fault injection).
    pub fn inject_fault(&mut self, target: FaultTarget, salt: u64) -> String {
        match self {
            Engine::Single(s) => s.inject_fault(target, salt),
            Engine::Sharded(s) => s.inject_fault(target, salt),
        }
    }

    /// Total number of particles.
    pub fn n_particles(&self) -> usize {
        match self {
            Engine::Single(s) => s.n_particles(),
            Engine::Sharded(s) => s.n_particles(),
        }
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &SimConfig {
        match self {
            Engine::Single(s) => s.config(),
            Engine::Sharded(s) => s.config(),
        }
    }

    /// Accumulated per-substep wall-clock timings.
    pub fn timings(&self) -> &StepTimings {
        match self {
            Engine::Single(s) => s.timings(),
            Engine::Sharded(s) => s.timings(),
        }
    }

    /// Reset the timing accumulators.
    pub fn reset_timings(&mut self) {
        match self {
            Engine::Single(s) => s.reset_timings(),
            Engine::Sharded(s) => s.reset_timings(),
        }
    }

    /// Rank paths taken so far: `(incremental, full)` — per fused step on
    /// the single-domain path, per shard-sort on the sharded path.
    pub fn sort_path_counts(&self) -> (u64, u64) {
        match self {
            Engine::Single(s) => s.sort_path_counts(),
            Engine::Sharded(s) => s.sort_path_counts(),
        }
    }

    /// Mover statistics: `(movers, particle-steps)` over ordinary steps.
    pub fn mover_stats(&self) -> (u64, u64) {
        match self {
            Engine::Single(s) => s.mover_stats(),
            Engine::Sharded(s) => s.mover_stats(),
        }
    }

    /// Override the incremental rank's mover-fraction ceiling.
    pub fn set_mover_threshold(&mut self, threshold: f64) {
        match self {
            Engine::Single(s) => s.set_mover_threshold(threshold),
            Engine::Sharded(s) => s.set_mover_threshold(threshold),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BodySpec, RngMode};

    fn wedge_cfg() -> SimConfig {
        let mut cfg = SimConfig::small_wedge(0.5);
        cfg.n_per_cell = 8.0;
        cfg.reservoir_fill = 16.0;
        cfg
    }

    #[test]
    fn sharded_incremental_engages_and_matches_full_mode() {
        let mut cfg = wedge_cfg();
        cfg.sort_mode = SortMode::Incremental;
        let mut a = ShardedSimulation::new(cfg.clone(), 3);
        cfg.sort_mode = SortMode::Full;
        let mut b = ShardedSimulation::new(cfg, 3);
        a.run(50);
        b.run(50);
        assert_eq!(
            a.state_hash(),
            b.state_hash(),
            "sharded rank paths must be bit-identical"
        );
        let (inc, full) = a.sort_path_counts();
        assert!(inc > 0, "sharded repair path never engaged");
        assert!(full > 0, "withdrawal steps must pin the full path");
        let (inc_b, _) = b.sort_path_counts();
        assert_eq!(inc_b, 0, "Full mode must never take the repair path");
        assert_eq!(a.mover_stats(), b.mover_stats());
    }

    #[test]
    fn owner_maps_every_cell_to_exactly_one_shard() {
        let layout = ShardLayout {
            cuts: vec![0, 3, 7, 16],
            tunnel_w: 16,
            res_base: 16 * 12,
        };
        for cell in 0..16 * 12 {
            let col = cell % 16;
            let expect = if col < 3 {
                0
            } else if col < 7 {
                1
            } else {
                2
            };
            assert_eq!(layout.owner(cell), expect, "cell {cell}");
        }
        // Reservoir cells always land on the last shard.
        assert_eq!(layout.owner(16 * 12), 2);
        assert_eq!(layout.owner(16 * 12 + 999), 2);
    }

    #[test]
    fn balanced_cuts_track_the_load_and_keep_every_shard_nonempty() {
        // All the weight in the last two columns: the first cuts collapse
        // to the minimum-width clamp.
        let mut load = vec![0u64; 8];
        load[6] = 100;
        load[7] = 100;
        let cuts = balanced_cuts(&load, 4);
        assert_eq!(cuts.len(), 5);
        assert_eq!(cuts[0], 0);
        assert_eq!(cuts[4], 8);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]), "cuts {cuts:?}");
        // The heavy columns end up split across the last shards.
        assert!(cuts[3] >= 6, "cuts {cuts:?}");
        // Uniform load → (close to) uniform cuts.
        let cuts = balanced_cuts(&[10; 8], 4);
        assert_eq!(cuts, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn sharded_runs_hash_identically_to_the_canonical_engine() {
        for shards in [1usize, 2, 3, 4] {
            let mut single = Simulation::new(SimConfig::small_test());
            let mut sharded = ShardedSimulation::new(SimConfig::small_test(), shards);
            single.run(40);
            sharded.run(40);
            assert_eq!(
                sharded.state_hash(),
                single.state_hash(),
                "{shards} shards diverged"
            );
            assert_eq!(sharded.diagnostics(), single.diagnostics());
        }
    }

    #[test]
    fn sampling_windows_are_shard_count_invariant() {
        let mut single = Simulation::new(wedge_cfg());
        let mut sharded = ShardedSimulation::new(wedge_cfg(), 3);
        single.run(30);
        sharded.run(30);
        single.begin_sampling();
        sharded.begin_sampling();
        single.run(40);
        sharded.run(40);
        assert_eq!(sharded.state_hash(), single.state_hash());
        let fa = single.finish_sampling();
        let fb = sharded.finish_sampling();
        assert_eq!(fa.density, fb.density);
        let sa = single.finish_surface_sampling().expect("wedge has facets");
        let sb = sharded.finish_surface_sampling().expect("wedge has facets");
        assert_eq!(sa.cp, sb.cp);
        assert_eq!(sa.force_x, sb.force_x);
    }

    #[test]
    fn sharded_checkpoint_resumes_bit_exactly_at_another_shard_count() {
        let mut straight = Simulation::new(wedge_cfg());
        straight.run(60);
        let mut a = ShardedSimulation::new(wedge_cfg(), 3);
        a.run(35);
        let bytes = a.save_state();
        for resume_shards in [1usize, 2, 4] {
            let mut b = ShardedSimulation::resume(wedge_cfg(), &bytes, resume_shards).unwrap();
            b.run(25);
            assert_eq!(
                b.state_hash(),
                straight.state_hash(),
                "resume at {resume_shards} shards diverged"
            );
        }
        // The canonical engine skips the advisory manifest entirely.
        let mut c = Simulation::resume(wedge_cfg(), &bytes).unwrap();
        c.run(25);
        assert_eq!(c.state_hash(), straight.state_hash());
    }

    #[test]
    fn manifest_round_trips_cuts_and_repartitions() {
        let mut a = ShardedSimulation::new(wedge_cfg(), 3);
        a.run(50);
        let bytes = a.save_state();
        let b = ShardedSimulation::resume(wedge_cfg(), &bytes, 3).unwrap();
        assert_eq!(b.layout().cuts(), a.layout().cuts());
        assert_eq!(b.repartitions(), a.repartitions());
        assert_eq!(b.shard_populations(), a.shard_populations());
    }

    #[test]
    fn repartition_rebalances_a_skewed_start_without_touching_the_hash() {
        // Deliberately bad initial cuts on a wedge flow: the engine must
        // repartition toward balance while staying bit-identical.
        let mut sharded = ShardedSimulation::new(wedge_cfg(), 4);
        let w = sharded.base.tunnel.width;
        sharded.layout.cuts = vec![0, 1, 2, 3, w];
        sharded.scatter();
        let mut single = Simulation::new(wedge_cfg());
        sharded.run(30);
        single.run(30);
        assert_eq!(sharded.state_hash(), single.state_hash());
        assert!(
            sharded.repartitions() > 0,
            "a maximally skewed layout must trigger the weighted repartition"
        );
        let pops = sharded.shard_populations();
        let max = *pops.iter().max().unwrap() as f64;
        let mean = pops.iter().sum::<usize>() as f64 / pops.len() as f64;
        assert!(
            max / mean < 2.0,
            "populations still skewed after repartition: {pops:?}"
        );
    }

    #[test]
    fn repartition_steps_pin_the_full_path_and_stay_bit_identical() {
        // A maximally skewed start forces early repartitions; the
        // just-repartitioned steps must take the full radix path (the
        // incremental counter freezes while they do) and the trajectory
        // must match the Full-mode run bit for bit through both
        // transitions — incremental → full → incremental.
        let mut cfg = wedge_cfg();
        cfg.sort_mode = SortMode::Incremental;
        let mut inc = ShardedSimulation::new(cfg.clone(), 4);
        let w = inc.base.tunnel.width;
        inc.layout.cuts = vec![0, 1, 2, 3, w];
        inc.scatter();
        cfg.sort_mode = SortMode::Full;
        let mut full = ShardedSimulation::new(cfg, 4);
        full.layout.cuts = vec![0, 1, 2, 3, w];
        full.scatter();
        let mut saw_repartition_fallback = false;
        for _ in 0..30 {
            let reparts_before = inc.repartitions();
            let (inc_before, full_before) = inc.sort_path_counts();
            inc.step();
            full.step();
            let (inc_after, full_after) = inc.sort_path_counts();
            if inc.repartitions() > reparts_before {
                assert_eq!(
                    inc_after, inc_before,
                    "a just-repartitioned step must not take the repair path"
                );
                assert!(full_after > full_before);
                saw_repartition_fallback = true;
            }
        }
        assert!(
            saw_repartition_fallback,
            "the skewed start never triggered a repartition step"
        );
        assert_eq!(
            inc.state_hash(),
            full.state_hash(),
            "trajectories diverged across the repartition fallback"
        );
        let (inc_total, _) = inc.sort_path_counts();
        assert!(inc_total > 0, "repair path never resumed after repartition");
    }

    #[test]
    fn engine_dispatch_covers_bodies_and_rng_modes() {
        for body in [
            BodySpec::None,
            BodySpec::Cylinder {
                cx: 8.0,
                cy: 6.0,
                r: 2.0,
            },
        ] {
            for rng_mode in [RngMode::Explicit, RngMode::DirtyBits] {
                let mut cfg = SimConfig::small_test();
                cfg.body = body.clone();
                cfg.rng_mode = rng_mode;
                let mut one = Engine::new(cfg.clone(), 1);
                let mut four = Engine::new(cfg.clone(), 4);
                one.run(25);
                four.run(25);
                assert_eq!(
                    one.state_hash(),
                    four.state_hash(),
                    "{body:?}/{rng_mode:?} diverged across shard counts"
                );
            }
        }
    }

    #[test]
    fn threaded_execution_is_bit_identical_to_serial_per_worker_count() {
        let mut cfg = wedge_cfg();
        cfg.exec = crate::config::ExecMode::Serial;
        let mut reference = ShardedSimulation::new(cfg.clone(), 3);
        reference.run(40);
        let (want_hash, want_diag) = (reference.state_hash(), reference.diagnostics());
        for workers in [1usize, 2, 4] {
            cfg.exec = crate::config::ExecMode::Threaded { workers };
            let mut t = ShardedSimulation::new(cfg.clone(), 3);
            assert_eq!(t.exec_workers(), workers.min(3));
            t.run(40);
            assert_eq!(t.state_hash(), want_hash, "{workers} workers diverged");
            assert_eq!(t.diagnostics(), want_diag);
            assert_eq!(t.sort_path_counts(), reference.sort_path_counts());
        }
    }

    #[test]
    fn set_cuts_rejects_malformed_layouts_and_stays_trajectory_neutral() {
        let mut sharded = ShardedSimulation::new(wedge_cfg(), 3);
        let w = sharded.base.tunnel.width;
        sharded.run(10);
        assert!(!sharded.set_cuts(&[0, 5, w]), "wrong arity must be refused");
        assert!(!sharded.set_cuts(&[0, 9, 5, w]), "non-ascending refused");
        assert!(!sharded.set_cuts(&[1, 5, 9, w]), "must start at 0");
        assert!(sharded.set_cuts(&[0, 1, 2, w]));
        sharded.run(20);
        let mut single = Simulation::new(wedge_cfg());
        single.run(30);
        assert_eq!(sharded.state_hash(), single.state_hash());
    }

    #[test]
    fn fault_injection_is_identical_on_the_canonical_view() {
        let mut single = Simulation::new(SimConfig::small_test());
        let mut sharded = ShardedSimulation::new(SimConfig::small_test(), 2);
        single.run(20);
        sharded.run(20);
        let m1 = single.inject_fault(FaultTarget::StreamwiseVelocity, 99);
        let m2 = sharded.inject_fault(FaultTarget::StreamwiseVelocity, 99);
        assert_eq!(m1, m2);
        assert_eq!(sharded.state_hash(), single.state_hash());
    }
}
