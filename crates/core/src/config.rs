//! Simulation configuration.

use dsmc_fixed::Rounding;
use dsmc_geom::{Body, Cylinder, FlatPlate, ForwardStep, NoBody, Wedge};
use dsmc_kinetics::MolecularModel;
use std::sync::Arc;

/// Which body sits in the test section.
#[derive(Clone, Debug, PartialEq)]
pub enum BodySpec {
    /// Empty tunnel (uniform flow / relaxation studies).
    None,
    /// The paper's wedge: leading edge `x0`, base length, ramp angle (deg).
    Wedge {
        /// Leading-edge station in cells.
        x0: f64,
        /// Base length in cells.
        base: f64,
        /// Ramp angle in degrees.
        angle_deg: f64,
    },
    /// Rectangular forward step.
    Step {
        /// Upstream face station.
        x0: f64,
        /// Downstream face station.
        x1: f64,
        /// Step height.
        h: f64,
    },
    /// Thin vertical plate.
    Plate {
        /// Plate station.
        x0: f64,
        /// Plate height.
        h: f64,
    },
    /// Circular cylinder (blunt body with a detached bow shock).
    Cylinder {
        /// Centre x-station.
        cx: f64,
        /// Centre height above the lower wall.
        cy: f64,
        /// Radius.
        r: f64,
    },
}

impl BodySpec {
    /// Instantiate the geometry object.
    pub fn build(&self) -> Arc<dyn Body> {
        match *self {
            BodySpec::None => Arc::new(NoBody),
            BodySpec::Wedge {
                x0,
                base,
                angle_deg,
            } => Arc::new(Wedge::new(x0, base, angle_deg)),
            BodySpec::Step { x0, x1, h } => Arc::new(ForwardStep::new(x0, x1, h)),
            BodySpec::Plate { x0, h } => Arc::new(FlatPlate::new(x0, h)),
            BodySpec::Cylinder { cx, cy, r } => Arc::new(Cylinder::new(cx, cy, r)),
        }
    }
}

/// Geometry of the reservoir region: its own small periodic box, sized so
/// positions stay well inside the Q8.23 range regardless of how many
/// reservoir cells are requested.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResLayout {
    /// Box width in cells (≤ 64).
    pub w: u32,
    /// Box height in cells.
    pub h: u32,
}

impl ResLayout {
    /// Layout covering at least `cells` unit cells.
    pub fn for_cells(cells: u32) -> Self {
        let cells = cells.max(1);
        let w = cells.min(64);
        Self {
            w,
            h: cells.div_ceil(w),
        }
    }

    /// Total cells in the box (≥ the requested count).
    pub fn total(&self) -> u32 {
        self.w * self.h
    }

    /// Cell index inside the box for a box-frame position.
    #[inline]
    pub fn cell(&self, x: dsmc_fixed::Fx, y: dsmc_fixed::Fx) -> u32 {
        let ix = x.floor_int();
        let iy = y.floor_int();
        debug_assert!(ix >= 0 && (ix as u32) < self.w && iy >= 0 && (iy as u32) < self.h);
        iy as u32 * self.w + ix as u32
    }
}

/// Tunnel-wall interaction model.
///
/// The paper implements specular (inviscid) walls and names "no slip
/// adiabatic and isothermal walls" as future work; the diffuse model is
/// that extension: particles striking the top/bottom walls are re-emitted
/// with a half-space Maxwellian at the wall temperature and zero mean
/// tangential velocity (full accommodation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WallModel {
    /// Specular reflection (the paper's inviscid walls; default).
    Specular,
    /// Fully accommodating diffuse re-emission at wall temperature
    /// `t_wall` in units of the freestream temperature.
    Diffuse {
        /// Wall temperature / freestream temperature.
        t_wall: f64,
    },
}

/// Which implementation of the hot loop drives each step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineMode {
    /// The zero-allocation pipeline (default): jittered pairs packed in
    /// the cell sweep, radix rank whose final pass emits the router
    /// addresses, scratch-owned boundary masks, grouped collision
    /// traversals.  Steady-state steps perform no heap allocation in the
    /// sort/send path.
    Fused,
    /// The pre-refactor pipeline, kept as the executable specification and
    /// the A/B baseline: per-step key column + allocating
    /// `sort_perm_by_key`, ten sequential column gathers, fresh boundary
    /// masks every step, per-segment collision traversals.  Bit-identical
    /// trajectories to [`PipelineMode::Fused`] for the same seed.
    TwoStep,
}

/// Where the per-particle random bits come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RngMode {
    /// One explicit xorshift32 stream per particle (default: reproducible,
    /// well distributed).
    Explicit,
    /// The paper's frugal mode: "a quick but dirty random number in the low
    /// order bits of a physical state quantity".  Saves the per-particle
    /// generator state and its update at the cost of weaker randomness;
    /// the `ablation_rng` experiment quantifies the difference.
    DirtyBits,
}

/// Full configuration of a [`crate::Simulation`].
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Tunnel width in unit cells (98 in the paper's runs).
    pub tunnel_w: u32,
    /// Tunnel height in unit cells (64 in the paper's runs).
    pub tunnel_h: u32,
    /// Body in the test section.
    pub body: BodySpec,
    /// Freestream Mach number.
    pub mach: f64,
    /// Most probable thermal speed in cells/step.
    pub c_m: f64,
    /// Freestream mean free path in cells; `0.0` = near-continuum (every
    /// candidate pair collides).
    pub lambda: f64,
    /// Freestream number density in particles per (full) cell.
    pub n_per_cell: f64,
    /// Number of unit cells in the reservoir strip.
    pub reservoir_cells: u32,
    /// Initial reservoir population per reservoir cell (defaults to
    /// `n_per_cell` via [`SimConfig::validated`]; may exceed it to buffer
    /// the plunger's batched demand).
    pub reservoir_fill: f64,
    /// Plunger trigger station in cells: the piston face advances with the
    /// freestream and snaps back after sweeping this far.
    pub plunger_trigger: f64,
    /// Bits of random jitter in the sort key ("a random number less than
    /// the scale factor is added" so partner pairings decorrelate between
    /// steps).
    pub jitter_bits: u32,
    /// Halving/rounding policy (the paper's fix is stochastic rounding).
    pub rounding: Rounding,
    /// Randomness source for the step loop.
    pub rng_mode: RngMode,
    /// Sort → send implementation for the hot loop.
    pub pipeline: PipelineMode,
    /// Molecular interaction model (the paper: Maxwell molecules).
    pub model: MolecularModel,
    /// Tunnel-wall interaction (the paper: specular; diffuse is the
    /// future-work extension).
    pub walls: WallModel,
    /// Master seed; every run with the same config and seed is bit-identical.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's headline configuration at full scale: 98×64 grid, 30°
    /// wedge of base 25 at x = 20, ~75 particles per cell (512k total with
    /// the reservoir), Mach 4.
    pub fn paper(lambda: f64) -> Self {
        Self {
            tunnel_w: 98,
            tunnel_h: 64,
            body: BodySpec::Wedge {
                x0: 20.0,
                base: 25.0,
                angle_deg: 30.0,
            },
            mach: 4.0,
            c_m: dsmc_kinetics::FreeStream::DEFAULT_CM,
            lambda,
            n_per_cell: 75.0,
            reservoir_cells: 600,
            reservoir_fill: 75.0,
            plunger_trigger: 4.0,
            jitter_bits: 8,
            rounding: Rounding::Stochastic,
            rng_mode: RngMode::Explicit,
            pipeline: PipelineMode::Fused,
            model: MolecularModel::Maxwell,
            walls: WallModel::Specular,
            seed: 0xD5_4C_19_89,
        }
    }

    /// A scaled-down wedge configuration that runs a full shock study in
    /// seconds (used by examples and integration tests).
    pub fn small_wedge(lambda: f64) -> Self {
        let mut c = Self::paper(lambda);
        c.tunnel_w = 64;
        c.tunnel_h = 40;
        c.body = BodySpec::Wedge {
            x0: 14.0,
            base: 16.0,
            angle_deg: 30.0,
        };
        c.n_per_cell = 40.0;
        c.reservoir_cells = 200;
        c.reservoir_fill = 40.0;
        c
    }

    /// A tiny empty-tunnel configuration for unit tests.
    pub fn small_test() -> Self {
        Self {
            tunnel_w: 16,
            tunnel_h: 12,
            body: BodySpec::None,
            mach: 4.0,
            c_m: 0.08,
            lambda: 0.5,
            n_per_cell: 10.0,
            reservoir_cells: 48,
            reservoir_fill: 10.0,
            plunger_trigger: 3.0,
            jitter_bits: 6,
            rounding: Rounding::Stochastic,
            rng_mode: RngMode::Explicit,
            pipeline: PipelineMode::Fused,
            model: MolecularModel::Maxwell,
            walls: WallModel::Specular,
            seed: 1,
        }
    }

    /// Validate and normalise (fills defaulted fields, checks ranges).
    ///
    /// Panics with a descriptive message on nonsense configurations — the
    /// library's contract is that a validated config cannot crash the step
    /// loop.
    pub fn validated(mut self) -> Self {
        assert!(self.tunnel_w >= 4 && self.tunnel_h >= 2, "tunnel too small");
        assert!(
            self.tunnel_w < 250 && self.tunnel_h < 250,
            "tunnel exceeds the Q8.23 position range"
        );
        assert!(self.n_per_cell >= 1.0, "need at least ~1 particle per cell");
        assert!(self.reservoir_cells >= 1, "reservoir must exist");
        assert!(
            self.plunger_trigger >= 1.0 && self.plunger_trigger < self.tunnel_w as f64 / 2.0,
            "plunger trigger out of range"
        );
        assert!(self.jitter_bits <= 12, "jitter beyond 12 bits is wasteful");
        if self.reservoir_fill <= 0.0 {
            self.reservoir_fill = self.n_per_cell;
        }
        let fs = dsmc_kinetics::FreeStream::new(self.mach, self.c_m, self.lambda);
        // Soft check of the eq.-(4) constraint; a violating config is
        // physically questionable but numerically safe, so warn only.
        if !(fs.time_step_constraint_ok() || self.lambda == 0.0) {
            eprintln!(
                "cm-dsmc warning: P∞ = {:.3} > 1/3 violates the one-collision-per-step \
                 assumption behind the selection rule (paper eq. 4); reduce c_m or \
                 increase λ∞ for quantitative work",
                fs.p_inf()
            );
        }
        // The reservoir must be able to supply one plunger refill.
        let refill = self.n_per_cell * self.plunger_trigger * self.tunnel_h as f64;
        let res_cap = self.reservoir_fill * self.reservoir_cells as f64;
        assert!(
            res_cap >= refill,
            "reservoir ({res_cap:.0}) cannot buffer one plunger refill ({refill:.0}); \
             increase reservoir_cells"
        );
        self
    }

    /// The freestream state implied by this configuration.
    pub fn freestream(&self) -> dsmc_kinetics::FreeStream {
        dsmc_kinetics::FreeStream::new(self.mach, self.c_m, self.lambda)
    }

    /// Canonical 64-bit fingerprint of every field that influences a
    /// trajectory.
    ///
    /// Snapshots store this value and [`crate::Simulation::resume`]
    /// refuses a snapshot whose fingerprint differs from the offered
    /// configuration's: restoring particle state under different physics
    /// would not crash, it would *silently* produce a run that is neither
    /// the old trajectory nor a valid new one.  Floats are hashed by bit
    /// pattern, enums by a stable discriminant plus their payloads, so
    /// any two configs that could diverge hash differently.  Fingerprint
    /// the *validated* config (validation normalises defaulted fields).
    pub fn fingerprint(&self) -> u64 {
        let mut h = dsmc_state::Fnv64::new();
        h.u32(self.tunnel_w);
        h.u32(self.tunnel_h);
        match self.body {
            BodySpec::None => h.u32(0),
            BodySpec::Wedge {
                x0,
                base,
                angle_deg,
            } => {
                h.u32(1);
                h.f64(x0);
                h.f64(base);
                h.f64(angle_deg);
            }
            BodySpec::Step { x0, x1, h: sh } => {
                h.u32(2);
                h.f64(x0);
                h.f64(x1);
                h.f64(sh);
            }
            BodySpec::Plate { x0, h: ph } => {
                h.u32(3);
                h.f64(x0);
                h.f64(ph);
            }
            BodySpec::Cylinder { cx, cy, r } => {
                h.u32(4);
                h.f64(cx);
                h.f64(cy);
                h.f64(r);
            }
        }
        h.f64(self.mach);
        h.f64(self.c_m);
        h.f64(self.lambda);
        h.f64(self.n_per_cell);
        h.u32(self.reservoir_cells);
        h.f64(self.reservoir_fill);
        h.f64(self.plunger_trigger);
        h.u32(self.jitter_bits);
        h.u32(match self.rounding {
            Rounding::Truncate => 0,
            Rounding::Stochastic => 1,
            Rounding::PaperLiteral => 2,
        });
        h.u32(match self.rng_mode {
            RngMode::Explicit => 0,
            RngMode::DirtyBits => 1,
        });
        // PipelineMode is deliberately *excluded*: Fused and TwoStep are
        // pinned bit-identical by the pipeline property tests, so a
        // checkpoint is portable between them.
        match self.model {
            MolecularModel::Maxwell => h.u32(0),
            MolecularModel::HardSphere => h.u32(1),
            MolecularModel::PowerLaw { alpha } => {
                h.u32(2);
                h.f64(alpha);
            }
        }
        match self.walls {
            WallModel::Specular => h.u32(0),
            WallModel::Diffuse { t_wall } => {
                h.u32(1);
                h.f64(t_wall);
            }
        }
        h.u64(self.seed);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_validates() {
        let c = SimConfig::paper(0.5).validated();
        assert_eq!(c.tunnel_w, 98);
        assert_eq!(c.tunnel_h, 64);
        // ~6100 free cells × 75 ≈ 460k flow particles, as in the paper.
        let body = c.body.build();
        let mut free = 0.0;
        for iy in 0..c.tunnel_h {
            for ix in 0..c.tunnel_w {
                free += body.free_volume_fraction(ix, iy);
            }
        }
        let n_flow = free * c.n_per_cell;
        assert!(
            (430_000.0..480_000.0).contains(&n_flow),
            "flow population {n_flow}"
        );
    }

    #[test]
    fn near_continuum_config() {
        let c = SimConfig::paper(0.0).validated();
        assert_eq!(c.freestream().p_inf(), 1.0);
    }

    #[test]
    fn reservoir_default_fill() {
        let mut c = SimConfig::small_test();
        c.reservoir_fill = 0.0;
        let c = c.validated();
        assert_eq!(c.reservoir_fill, c.n_per_cell);
    }

    #[test]
    #[should_panic(expected = "reservoir")]
    fn undersized_reservoir_rejected() {
        let mut c = SimConfig::small_test();
        c.reservoir_cells = 1;
        c.reservoir_fill = 1.0;
        let _ = c.validated();
    }

    #[test]
    #[should_panic(expected = "Q8.23")]
    fn oversized_tunnel_rejected() {
        let mut c = SimConfig::small_test();
        c.tunnel_w = 400;
        let _ = c.validated();
    }

    #[test]
    fn body_specs_build() {
        assert!(!BodySpec::None.build().contains_f64(1.0, 1.0));
        let w = BodySpec::Wedge {
            x0: 5.0,
            base: 10.0,
            angle_deg: 30.0,
        }
        .build();
        assert!(w.contains_f64(10.0, 0.5));
        let s = BodySpec::Step {
            x0: 2.0,
            x1: 4.0,
            h: 3.0,
        }
        .build();
        assert!(s.contains_f64(3.0, 1.0));
        let p = BodySpec::Plate { x0: 6.0, h: 2.0 }.build();
        assert!(p.contains_f64(6.0, 1.0));
        let c = BodySpec::Cylinder {
            cx: 8.0,
            cy: 6.0,
            r: 2.0,
        }
        .build();
        assert!(c.contains_f64(8.0, 6.5));
        assert!(!c.contains_f64(8.0, 8.5));
    }
}
