//! Simulation configuration.

use dsmc_fixed::Rounding;
use dsmc_geom::{Body, Cylinder, FlatPlate, ForwardStep, NoBody, Wedge};
use dsmc_kinetics::MolecularModel;
use std::sync::Arc;

/// Why a [`SimConfig`] was rejected by [`SimConfig::try_validated`].
///
/// Every variant names the offending field, so a supervisor or service
/// front-end can report (and log) exactly what to fix instead of crashing
/// a worker with a panic or — worse — feeding NaN through the fixed-point
/// conversions and producing a silently-garbage run.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// A floating-point field is NaN or infinite.
    NotFinite {
        /// Field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A field is finite but outside its admissible range.
    OutOfRange {
        /// Field name.
        field: &'static str,
        /// The constraint that failed, human-readable.
        why: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The tunnel grid is below the 4×2 minimum.
    TunnelTooSmall {
        /// Requested width in cells.
        w: u32,
        /// Requested height in cells.
        h: u32,
    },
    /// The tunnel grid exceeds the Q8.23 position range.
    TunnelTooLarge {
        /// Requested width in cells.
        w: u32,
        /// Requested height in cells.
        h: u32,
    },
    /// The reservoir cannot buffer one plunger refill.
    ReservoirTooSmall {
        /// Reservoir capacity in particles.
        capacity: f64,
        /// One refill's demand in particles.
        refill: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NotFinite { field, value } => {
                write!(f, "{field} must be finite (got {value})")
            }
            ConfigError::OutOfRange { field, why, value } => {
                write!(f, "{field} {why} (got {value})")
            }
            ConfigError::TunnelTooSmall { w, h } => {
                write!(f, "tunnel too small: {w}×{h} (need at least 4×2 cells)")
            }
            ConfigError::TunnelTooLarge { w, h } => write!(
                f,
                "tunnel {w}×{h} exceeds the Q8.23 position range (each axis < 250 cells)"
            ),
            ConfigError::ReservoirTooSmall { capacity, refill } => write!(
                f,
                "reservoir ({capacity:.0}) cannot buffer one plunger refill ({refill:.0}); \
                 increase reservoir_cells"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which body sits in the test section.
#[derive(Clone, Debug, PartialEq)]
pub enum BodySpec {
    /// Empty tunnel (uniform flow / relaxation studies).
    None,
    /// The paper's wedge: leading edge `x0`, base length, ramp angle (deg).
    Wedge {
        /// Leading-edge station in cells.
        x0: f64,
        /// Base length in cells.
        base: f64,
        /// Ramp angle in degrees.
        angle_deg: f64,
    },
    /// Rectangular forward step.
    Step {
        /// Upstream face station.
        x0: f64,
        /// Downstream face station.
        x1: f64,
        /// Step height.
        h: f64,
    },
    /// Thin vertical plate.
    Plate {
        /// Plate station.
        x0: f64,
        /// Plate height.
        h: f64,
    },
    /// Circular cylinder (blunt body with a detached bow shock).
    Cylinder {
        /// Centre x-station.
        cx: f64,
        /// Centre height above the lower wall.
        cy: f64,
        /// Radius.
        r: f64,
    },
}

impl BodySpec {
    /// Instantiate the geometry object.
    pub fn build(&self) -> Arc<dyn Body> {
        match *self {
            BodySpec::None => Arc::new(NoBody),
            BodySpec::Wedge {
                x0,
                base,
                angle_deg,
            } => Arc::new(Wedge::new(x0, base, angle_deg)),
            BodySpec::Step { x0, x1, h } => Arc::new(ForwardStep::new(x0, x1, h)),
            BodySpec::Plate { x0, h } => Arc::new(FlatPlate::new(x0, h)),
            BodySpec::Cylinder { cx, cy, r } => Arc::new(Cylinder::new(cx, cy, r)),
        }
    }
}

/// Geometry of the reservoir region: its own small periodic box, sized so
/// positions stay well inside the Q8.23 range regardless of how many
/// reservoir cells are requested.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResLayout {
    /// Box width in cells (≤ 64).
    pub w: u32,
    /// Box height in cells.
    pub h: u32,
}

impl ResLayout {
    /// Layout covering at least `cells` unit cells.
    pub fn for_cells(cells: u32) -> Self {
        let cells = cells.max(1);
        let w = cells.min(64);
        Self {
            w,
            h: cells.div_ceil(w),
        }
    }

    /// Total cells in the box (≥ the requested count).
    pub fn total(&self) -> u32 {
        self.w * self.h
    }

    /// Cell index inside the box for a box-frame position.
    #[inline]
    pub fn cell(&self, x: dsmc_fixed::Fx, y: dsmc_fixed::Fx) -> u32 {
        let ix = x.floor_int();
        let iy = y.floor_int();
        debug_assert!(ix >= 0 && (ix as u32) < self.w && iy >= 0 && (iy as u32) < self.h);
        iy as u32 * self.w + ix as u32
    }
}

/// Tunnel-wall interaction model.
///
/// The paper implements specular (inviscid) walls and names "no slip
/// adiabatic and isothermal walls" as future work; the diffuse model is
/// that extension: particles striking the top/bottom walls are re-emitted
/// with a half-space Maxwellian at the wall temperature and zero mean
/// tangential velocity (full accommodation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WallModel {
    /// Specular reflection (the paper's inviscid walls; default).
    Specular,
    /// Fully accommodating diffuse re-emission at wall temperature
    /// `t_wall` in units of the freestream temperature.
    Diffuse {
        /// Wall temperature / freestream temperature.
        t_wall: f64,
    },
}

/// Which implementation of the hot loop drives each step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineMode {
    /// The zero-allocation pipeline (default): jittered pairs packed in
    /// the cell sweep, radix rank whose final pass emits the router
    /// addresses, scratch-owned boundary masks, grouped collision
    /// traversals.  Steady-state steps perform no heap allocation in the
    /// sort/send path.
    Fused,
    /// The pre-refactor pipeline, kept as the executable specification and
    /// the A/B baseline: per-step key column + allocating
    /// `sort_perm_by_key`, ten sequential column gathers, fresh boundary
    /// masks every step, per-segment collision traversals.  Bit-identical
    /// trajectories to [`PipelineMode::Fused`] for the same seed.
    TwoStep,
}

/// Which rank algorithm the fused sort phase uses on steady-state steps.
///
/// Both modes produce the **bitwise-identical** order, segment bounds and
/// trajectory (see `tests/tests/sort_identity.rs`), so the choice is a pure
/// performance A/B — the same contract [`PipelineMode::TwoStep`] has with
/// the fused pipeline.  Only the `Fused` pipeline consults this knob; the
/// `TwoStep` reference always ranks with the full radix sort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortMode {
    /// Re-derive the permutation from scratch every step with the stable
    /// LSD radix sort over the packed `(cell | jitter, index)` words.
    Full,
    /// Temporal-coherence repair (default): count cell-changers ("movers")
    /// during the fused move sweep, and when the mover fraction is under
    /// the threshold, rebuild the order from the previous step's segment
    /// structure — a one-pass bucket by destination cell followed by a
    /// per-segment in-cache sort — instead of the full radix rank.  Falls
    /// back to `Full` when the mover fraction exceeds the threshold, on
    /// plunger-withdrawal steps, on the step after a cross-shard
    /// repartition, and whenever the previous structure is unavailable
    /// (first step, resume).
    Incremental,
}

/// How the sharded engine drives its per-shard phase work.
///
/// Both modes produce **bitwise-identical** trajectories (see
/// `tests/tests/shard_exec.rs`): every per-shard phase (move, sort,
/// collide, sample) touches only shard-private state plus exact
/// integer-atomic accumulators, and every cross-shard reduction happens on
/// the coordinator in shard-index order at the existing phase barriers.
/// The choice is therefore a pure execution knob — the same contract
/// [`PipelineMode::TwoStep`] and [`SortMode::Full`] have with their fused
/// counterparts — and it is *excluded* from [`SimConfig::fingerprint`] so
/// checkpoints stay portable between modes.  Only the sharded engine
/// consults it; the single-domain [`crate::Simulation`] is inherently
/// serial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Step every shard on the coordinator thread, in shard order — the
    /// executable specification the threaded path is pinned against.
    /// Worker panics unwind normally.
    Serial,
    /// Fan each per-shard phase out over a pool of scoped worker threads
    /// (`std::thread::scope`, so it composes with the rayon pool), joining
    /// at the phase barriers.  Worker panics are caught and surfaced as a
    /// typed `ShardExecError` carrying the shard id.
    Threaded {
        /// Worker-thread count; `0` means "one per available core",
        /// clamped to the shard count either way.
        workers: usize,
    },
}

impl ExecMode {
    /// The environment-aware default: `DSMC_EXEC_THREADS=serial` forces
    /// [`ExecMode::Serial`], `DSMC_EXEC_THREADS=n` forces
    /// `Threaded { workers: n }`, and with the variable unset the mode is
    /// `Threaded` with auto workers on a multi-core host and `Serial` on a
    /// single-core one (where fan-out could only add overhead).
    pub fn from_env_or_auto() -> Self {
        match std::env::var("DSMC_EXEC_THREADS") {
            Ok(v) if v.eq_ignore_ascii_case("serial") => ExecMode::Serial,
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => ExecMode::Threaded { workers: n },
                _ => ExecMode::Serial,
            },
            Err(_) => {
                if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
                    ExecMode::Threaded { workers: 0 }
                } else {
                    ExecMode::Serial
                }
            }
        }
    }

    /// Resolve the worker count this mode uses for `n_shards` shards:
    /// `Serial` is one worker (the coordinator); `Threaded` resolves
    /// `workers == 0` to the available core count, then clamps to
    /// `[1, n_shards]` — a worker per shard is the maximum useful width.
    pub fn resolved_workers(&self, n_shards: usize) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::Threaded { workers } => {
                let w = if *workers == 0 {
                    std::thread::available_parallelism().map_or(1, |n| n.get())
                } else {
                    *workers
                };
                w.clamp(1, n_shards.max(1))
            }
        }
    }
}

impl Default for ExecMode {
    fn default() -> Self {
        Self::from_env_or_auto()
    }
}

/// Where the per-particle random bits come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RngMode {
    /// One explicit xorshift32 stream per particle (default: reproducible,
    /// well distributed).
    Explicit,
    /// The paper's frugal mode: "a quick but dirty random number in the low
    /// order bits of a physical state quantity".  Saves the per-particle
    /// generator state and its update at the cost of weaker randomness;
    /// the `ablation_rng` experiment quantifies the difference.
    DirtyBits,
}

/// Full configuration of a [`crate::Simulation`].
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Tunnel width in unit cells (98 in the paper's runs).
    pub tunnel_w: u32,
    /// Tunnel height in unit cells (64 in the paper's runs).
    pub tunnel_h: u32,
    /// Body in the test section.
    pub body: BodySpec,
    /// Freestream Mach number.
    pub mach: f64,
    /// Most probable thermal speed in cells/step.
    pub c_m: f64,
    /// Freestream mean free path in cells; `0.0` = near-continuum (every
    /// candidate pair collides).
    pub lambda: f64,
    /// Freestream number density in particles per (full) cell.
    pub n_per_cell: f64,
    /// Number of unit cells in the reservoir strip.
    pub reservoir_cells: u32,
    /// Initial reservoir population per reservoir cell (defaults to
    /// `n_per_cell` via [`SimConfig::validated`]; may exceed it to buffer
    /// the plunger's batched demand).
    pub reservoir_fill: f64,
    /// Plunger trigger station in cells: the piston face advances with the
    /// freestream and snaps back after sweeping this far.
    pub plunger_trigger: f64,
    /// Bits of random jitter in the sort key ("a random number less than
    /// the scale factor is added" so partner pairings decorrelate between
    /// steps).
    pub jitter_bits: u32,
    /// Halving/rounding policy (the paper's fix is stochastic rounding).
    pub rounding: Rounding,
    /// Randomness source for the step loop.
    pub rng_mode: RngMode,
    /// Sort → send implementation for the hot loop.
    pub pipeline: PipelineMode,
    /// Rank algorithm for steady-state fused steps (full radix vs
    /// incremental repair); bit-identical outputs either way.
    pub sort_mode: SortMode,
    /// Per-shard phase execution for the sharded engine (serial coordinator
    /// vs scoped worker threads); bit-identical outputs either way.
    pub exec: ExecMode,
    /// Molecular interaction model (the paper: Maxwell molecules).
    pub model: MolecularModel,
    /// Tunnel-wall interaction (the paper: specular; diffuse is the
    /// future-work extension).
    pub walls: WallModel,
    /// Master seed; every run with the same config and seed is bit-identical.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's headline configuration at full scale: 98×64 grid, 30°
    /// wedge of base 25 at x = 20, ~75 particles per cell (512k total with
    /// the reservoir), Mach 4.
    pub fn paper(lambda: f64) -> Self {
        Self {
            tunnel_w: 98,
            tunnel_h: 64,
            body: BodySpec::Wedge {
                x0: 20.0,
                base: 25.0,
                angle_deg: 30.0,
            },
            mach: 4.0,
            c_m: dsmc_kinetics::FreeStream::DEFAULT_CM,
            lambda,
            n_per_cell: 75.0,
            reservoir_cells: 600,
            reservoir_fill: 75.0,
            plunger_trigger: 4.0,
            jitter_bits: 8,
            rounding: Rounding::Stochastic,
            rng_mode: RngMode::Explicit,
            pipeline: PipelineMode::Fused,
            sort_mode: SortMode::Incremental,
            exec: ExecMode::default(),
            model: MolecularModel::Maxwell,
            walls: WallModel::Specular,
            seed: 0xD5_4C_19_89,
        }
    }

    /// A scaled-down wedge configuration that runs a full shock study in
    /// seconds (used by examples and integration tests).
    pub fn small_wedge(lambda: f64) -> Self {
        let mut c = Self::paper(lambda);
        c.tunnel_w = 64;
        c.tunnel_h = 40;
        c.body = BodySpec::Wedge {
            x0: 14.0,
            base: 16.0,
            angle_deg: 30.0,
        };
        c.n_per_cell = 40.0;
        c.reservoir_cells = 200;
        c.reservoir_fill = 40.0;
        c
    }

    /// A tiny empty-tunnel configuration for unit tests.
    pub fn small_test() -> Self {
        Self {
            tunnel_w: 16,
            tunnel_h: 12,
            body: BodySpec::None,
            mach: 4.0,
            c_m: 0.08,
            lambda: 0.5,
            n_per_cell: 10.0,
            reservoir_cells: 48,
            reservoir_fill: 10.0,
            plunger_trigger: 3.0,
            jitter_bits: 6,
            rounding: Rounding::Stochastic,
            rng_mode: RngMode::Explicit,
            pipeline: PipelineMode::Fused,
            sort_mode: SortMode::Incremental,
            exec: ExecMode::default(),
            model: MolecularModel::Maxwell,
            walls: WallModel::Specular,
            seed: 1,
        }
    }

    /// Validate and normalise (fills defaulted fields, checks ranges).
    ///
    /// Panics with a descriptive message on nonsense configurations — the
    /// library's contract is that a validated config cannot crash the step
    /// loop.  Services and supervisors that must survive a bad config use
    /// [`SimConfig::try_validated`] instead; this is the same check.
    pub fn validated(self) -> Self {
        self.try_validated()
            .unwrap_or_else(|e| panic!("invalid SimConfig: {e}"))
    }

    /// Validate and normalise, reporting problems as a typed
    /// [`ConfigError`] instead of panicking.
    ///
    /// Checks, in order: every float field (including enum payloads) is
    /// finite; the tunnel grid fits the 4×2 minimum and the Q8.23 position
    /// range; density, thermal speed, Mach and mean free path are in
    /// range; the plunger trigger and jitter width are admissible; and the
    /// reservoir can buffer one plunger refill.  A `reservoir_fill ≤ 0`
    /// (but finite) is normalised to `n_per_cell`, not rejected.
    pub fn try_validated(mut self) -> Result<Self, ConfigError> {
        // Finiteness first: every later range check (and the fixed-point
        // conversions in the engine) may assume real numbers.
        let finite = |field: &'static str, value: f64| {
            if value.is_finite() {
                Ok(())
            } else {
                Err(ConfigError::NotFinite { field, value })
            }
        };
        finite("mach", self.mach)?;
        finite("c_m", self.c_m)?;
        finite("lambda", self.lambda)?;
        finite("n_per_cell", self.n_per_cell)?;
        finite("reservoir_fill", self.reservoir_fill)?;
        finite("plunger_trigger", self.plunger_trigger)?;
        match self.body {
            BodySpec::None => {}
            BodySpec::Wedge {
                x0,
                base,
                angle_deg,
            } => {
                finite("body.x0", x0)?;
                finite("body.base", base)?;
                finite("body.angle_deg", angle_deg)?;
            }
            BodySpec::Step { x0, x1, h } => {
                finite("body.x0", x0)?;
                finite("body.x1", x1)?;
                finite("body.h", h)?;
            }
            BodySpec::Plate { x0, h } => {
                finite("body.x0", x0)?;
                finite("body.h", h)?;
            }
            BodySpec::Cylinder { cx, cy, r } => {
                finite("body.cx", cx)?;
                finite("body.cy", cy)?;
                finite("body.r", r)?;
            }
        }
        if let MolecularModel::PowerLaw { alpha } = self.model {
            finite("model.alpha", alpha)?;
        }
        if let WallModel::Diffuse { t_wall } = self.walls {
            finite("walls.t_wall", t_wall)?;
            if t_wall <= 0.0 {
                return Err(ConfigError::OutOfRange {
                    field: "walls.t_wall",
                    why: "must be a positive temperature ratio",
                    value: t_wall,
                });
            }
        }
        let range = |field: &'static str, value: f64, ok: bool, why: &'static str| {
            if ok {
                Ok(())
            } else {
                Err(ConfigError::OutOfRange { field, why, value })
            }
        };
        if self.tunnel_w < 4 || self.tunnel_h < 2 {
            return Err(ConfigError::TunnelTooSmall {
                w: self.tunnel_w,
                h: self.tunnel_h,
            });
        }
        if self.tunnel_w >= 250 || self.tunnel_h >= 250 {
            return Err(ConfigError::TunnelTooLarge {
                w: self.tunnel_w,
                h: self.tunnel_h,
            });
        }
        range(
            "n_per_cell",
            self.n_per_cell,
            self.n_per_cell >= 1.0,
            "needs at least ~1 particle per cell",
        )?;
        range("mach", self.mach, self.mach >= 0.0, "must be non-negative")?;
        // The engine's time-step scale: `FreeStream::new` asserts this
        // same window, so enforce it here where it is a typed error (a
        // zero or negative c_m is the "zero/negative dt" failure mode).
        range(
            "c_m",
            self.c_m,
            self.c_m > 0.0 && self.c_m < 0.5,
            "must be in (0, 0.5) cells/step",
        )?;
        range(
            "lambda",
            self.lambda,
            self.lambda >= 0.0,
            "must be non-negative (0 = near-continuum)",
        )?;
        range(
            "reservoir_cells",
            self.reservoir_cells as f64,
            self.reservoir_cells >= 1,
            "reservoir must exist",
        )?;
        range(
            "plunger_trigger",
            self.plunger_trigger,
            self.plunger_trigger >= 1.0 && self.plunger_trigger < self.tunnel_w as f64 / 2.0,
            "must be in [1, tunnel_w/2)",
        )?;
        range(
            "jitter_bits",
            self.jitter_bits as f64,
            self.jitter_bits <= 12,
            "beyond 12 bits is wasteful",
        )?;
        if self.reservoir_fill <= 0.0 {
            self.reservoir_fill = self.n_per_cell;
        }
        let fs = dsmc_kinetics::FreeStream::new(self.mach, self.c_m, self.lambda);
        // Soft check of the eq.-(4) constraint; a violating config is
        // physically questionable but numerically safe, so warn only.
        if !(fs.time_step_constraint_ok() || self.lambda == 0.0) {
            eprintln!(
                "cm-dsmc warning: P∞ = {:.3} > 1/3 violates the one-collision-per-step \
                 assumption behind the selection rule (paper eq. 4); reduce c_m or \
                 increase λ∞ for quantitative work",
                fs.p_inf()
            );
        }
        // The reservoir must be able to supply one plunger refill.
        let refill = self.n_per_cell * self.plunger_trigger * self.tunnel_h as f64;
        let res_cap = self.reservoir_fill * self.reservoir_cells as f64;
        if res_cap < refill {
            return Err(ConfigError::ReservoirTooSmall {
                capacity: res_cap,
                refill,
            });
        }
        Ok(self)
    }

    /// The freestream state implied by this configuration.
    pub fn freestream(&self) -> dsmc_kinetics::FreeStream {
        dsmc_kinetics::FreeStream::new(self.mach, self.c_m, self.lambda)
    }

    /// Canonical 64-bit fingerprint of every field that influences a
    /// trajectory.
    ///
    /// Snapshots store this value and [`crate::Simulation::resume`]
    /// refuses a snapshot whose fingerprint differs from the offered
    /// configuration's: restoring particle state under different physics
    /// would not crash, it would *silently* produce a run that is neither
    /// the old trajectory nor a valid new one.  Floats are hashed by bit
    /// pattern, enums by a stable discriminant plus their payloads, so
    /// any two configs that could diverge hash differently.  Fingerprint
    /// the *validated* config (validation normalises defaulted fields).
    pub fn fingerprint(&self) -> u64 {
        let mut h = dsmc_state::Fnv64::new();
        h.u32(self.tunnel_w);
        h.u32(self.tunnel_h);
        match self.body {
            BodySpec::None => h.u32(0),
            BodySpec::Wedge {
                x0,
                base,
                angle_deg,
            } => {
                h.u32(1);
                h.f64(x0);
                h.f64(base);
                h.f64(angle_deg);
            }
            BodySpec::Step { x0, x1, h: sh } => {
                h.u32(2);
                h.f64(x0);
                h.f64(x1);
                h.f64(sh);
            }
            BodySpec::Plate { x0, h: ph } => {
                h.u32(3);
                h.f64(x0);
                h.f64(ph);
            }
            BodySpec::Cylinder { cx, cy, r } => {
                h.u32(4);
                h.f64(cx);
                h.f64(cy);
                h.f64(r);
            }
        }
        h.f64(self.mach);
        h.f64(self.c_m);
        h.f64(self.lambda);
        h.f64(self.n_per_cell);
        h.u32(self.reservoir_cells);
        h.f64(self.reservoir_fill);
        h.f64(self.plunger_trigger);
        h.u32(self.jitter_bits);
        h.u32(match self.rounding {
            Rounding::Truncate => 0,
            Rounding::Stochastic => 1,
            Rounding::PaperLiteral => 2,
        });
        h.u32(match self.rng_mode {
            RngMode::Explicit => 0,
            RngMode::DirtyBits => 1,
        });
        // PipelineMode is deliberately *excluded*: Fused and TwoStep are
        // pinned bit-identical by the pipeline property tests, so a
        // checkpoint is portable between them.  SortMode is excluded for
        // the same reason: Full and Incremental ranks are pinned
        // bit-identical by the sort-identity suite, so a checkpoint is
        // portable between them too.  ExecMode is excluded for the same
        // reason again: Serial and Threaded shard execution are pinned
        // bit-identical by the shard_exec suite, so a checkpoint is
        // portable between any worker counts.
        match self.model {
            MolecularModel::Maxwell => h.u32(0),
            MolecularModel::HardSphere => h.u32(1),
            MolecularModel::PowerLaw { alpha } => {
                h.u32(2);
                h.f64(alpha);
            }
        }
        match self.walls {
            WallModel::Specular => h.u32(0),
            WallModel::Diffuse { t_wall } => {
                h.u32(1);
                h.f64(t_wall);
            }
        }
        h.u64(self.seed);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_validates() {
        let c = SimConfig::paper(0.5).validated();
        assert_eq!(c.tunnel_w, 98);
        assert_eq!(c.tunnel_h, 64);
        // ~6100 free cells × 75 ≈ 460k flow particles, as in the paper.
        let body = c.body.build();
        let mut free = 0.0;
        for iy in 0..c.tunnel_h {
            for ix in 0..c.tunnel_w {
                free += body.free_volume_fraction(ix, iy);
            }
        }
        let n_flow = free * c.n_per_cell;
        assert!(
            (430_000.0..480_000.0).contains(&n_flow),
            "flow population {n_flow}"
        );
    }

    #[test]
    fn near_continuum_config() {
        let c = SimConfig::paper(0.0).validated();
        assert_eq!(c.freestream().p_inf(), 1.0);
    }

    #[test]
    fn reservoir_default_fill() {
        let mut c = SimConfig::small_test();
        c.reservoir_fill = 0.0;
        let c = c.validated();
        assert_eq!(c.reservoir_fill, c.n_per_cell);
    }

    #[test]
    #[should_panic(expected = "reservoir")]
    fn undersized_reservoir_rejected() {
        let mut c = SimConfig::small_test();
        c.reservoir_cells = 1;
        c.reservoir_fill = 1.0;
        let _ = c.validated();
    }

    #[test]
    #[should_panic(expected = "Q8.23")]
    fn oversized_tunnel_rejected() {
        let mut c = SimConfig::small_test();
        c.tunnel_w = 400;
        let _ = c.validated();
    }

    #[test]
    fn nonfinite_floats_are_typed_errors() {
        for (mutate, field) in [
            (
                (|c: &mut SimConfig| c.mach = f64::NAN) as fn(&mut SimConfig),
                "mach",
            ),
            (|c: &mut SimConfig| c.c_m = f64::INFINITY, "c_m"),
            (|c: &mut SimConfig| c.lambda = f64::NEG_INFINITY, "lambda"),
            (|c: &mut SimConfig| c.n_per_cell = f64::NAN, "n_per_cell"),
            (
                |c: &mut SimConfig| c.reservoir_fill = f64::NAN,
                "reservoir_fill",
            ),
            (
                |c: &mut SimConfig| c.plunger_trigger = f64::NAN,
                "plunger_trigger",
            ),
            (
                |c: &mut SimConfig| {
                    c.body = BodySpec::Wedge {
                        x0: f64::NAN,
                        base: 6.0,
                        angle_deg: 30.0,
                    }
                },
                "body.x0",
            ),
            (
                |c: &mut SimConfig| c.walls = WallModel::Diffuse { t_wall: f64::NAN },
                "walls.t_wall",
            ),
            (
                |c: &mut SimConfig| {
                    c.model = dsmc_kinetics::MolecularModel::PowerLaw { alpha: f64::NAN }
                },
                "model.alpha",
            ),
        ] {
            let mut c = SimConfig::small_test();
            mutate(&mut c);
            match c.try_validated() {
                Err(ConfigError::NotFinite { field: f, .. }) => assert_eq!(f, field),
                other => panic!("{field}: expected NotFinite, got {other:?}"),
            }
        }
    }

    #[test]
    fn zero_or_negative_time_scale_is_rejected() {
        // c_m is the step's thermal displacement scale — the config-level
        // analogue of a zero/negative dt.
        for bad in [0.0, -0.08, 0.5] {
            let mut c = SimConfig::small_test();
            c.c_m = bad;
            assert!(
                matches!(
                    c.try_validated(),
                    Err(ConfigError::OutOfRange { field: "c_m", .. })
                ),
                "c_m = {bad} must be out of range"
            );
        }
        let mut c = SimConfig::small_test();
        c.n_per_cell = 0.0;
        assert!(matches!(
            c.try_validated(),
            Err(ConfigError::OutOfRange {
                field: "n_per_cell",
                ..
            })
        ));
        let mut c = SimConfig::small_test();
        c.mach = -1.0;
        assert!(matches!(
            c.try_validated(),
            Err(ConfigError::OutOfRange { field: "mach", .. })
        ));
        let mut c = SimConfig::small_test();
        c.walls = WallModel::Diffuse { t_wall: -2.0 };
        assert!(matches!(
            c.try_validated(),
            Err(ConfigError::OutOfRange {
                field: "walls.t_wall",
                ..
            })
        ));
    }

    #[test]
    fn tunnel_size_errors_are_typed() {
        let mut c = SimConfig::small_test();
        c.tunnel_w = 2;
        assert!(matches!(
            c.try_validated(),
            Err(ConfigError::TunnelTooSmall { w: 2, .. })
        ));
        let mut c = SimConfig::small_test();
        c.tunnel_h = 300;
        assert!(matches!(
            c.try_validated(),
            Err(ConfigError::TunnelTooLarge { h: 300, .. })
        ));
    }

    #[test]
    fn try_validated_accepts_and_normalises_good_configs() {
        let mut c = SimConfig::small_test();
        c.reservoir_fill = -1.0; // finite non-positive → defaulted
        let v = c.try_validated().expect("good config");
        assert_eq!(v.reservoir_fill, v.n_per_cell);
        let _ = SimConfig::paper(0.5).try_validated().expect("paper config");
    }

    #[test]
    fn body_specs_build() {
        assert!(!BodySpec::None.build().contains_f64(1.0, 1.0));
        let w = BodySpec::Wedge {
            x0: 5.0,
            base: 10.0,
            angle_deg: 30.0,
        }
        .build();
        assert!(w.contains_f64(10.0, 0.5));
        let s = BodySpec::Step {
            x0: 2.0,
            x1: 4.0,
            h: 3.0,
        }
        .build();
        assert!(s.contains_f64(3.0, 1.0));
        let p = BodySpec::Plate { x0: 6.0, h: 2.0 }.build();
        assert!(p.contains_f64(6.0, 1.0));
        let c = BodySpec::Cylinder {
            cx: 8.0,
            cy: 6.0,
            r: 2.0,
        }
        .build();
        assert!(c.contains_f64(8.0, 6.5));
        assert!(!c.contains_f64(8.0, 8.5));
    }
}
