//! Surface-flux sampling: Cp/Cf/Ch distributions along the body.
//!
//! The paper validates its implementation entirely from *volume* fields —
//! density plots, shock angles, plateau ratios — and names finer
//! aerodynamic outputs as the point of the exercise: hypersonic vehicle
//! design cares about what the flow does **to the body**.  Production DSMC
//! codes report exactly that — pressure, skin-friction and heat-transfer
//! coefficient distributions along the surface — and this module adds the
//! same products to the engine.
//!
//! The design mirrors [`crate::sample::FieldAccumulator`], with the body's
//! arc-length facets (see [`dsmc_geom::SurfaceFacet`]) playing the role of
//! the flow cells: during a sampling window every specular body resolve in
//! the boundary pass records, into the facet its impact point maps to, the
//! momentum the particle delivered to the surface and its incident and
//! reflected kinetic energies.  The per-facet slots are relaxed atomics
//! over *integer* (fixed-point raw) sums, so accumulation is
//! order-independent and the results are bit-identical for every
//! `RAYON_NUM_THREADS` — the same guarantee the rest of the pipeline makes,
//! and the reason surface metrics can be golden-pinned exactly.
//!
//! The window-ending reduction ([`SurfaceAccumulator::finish`]) turns the
//! sums into the standard coefficients, normalised by the freestream
//! dynamic pressure `q∞ = ½ n∞ U∞²` (unit particle mass):
//!
//! * `Cp = (p − p∞) / q∞` with `p` the normal momentum flux per unit arc
//!   length per step and `p∞ = n∞ σ∞²` the freestream static pressure,
//! * `Cf = τ / q∞` with `τ` the tangential momentum flux (positive along
//!   the facet tangent `t̂ = (n̂.y, −n̂.x)`, i.e. along increasing arc
//!   length),
//! * `Ch = q̇ / (½ n∞ U∞³)` with `q̇` the *net* kinetic-energy flux into
//!   the surface.  The bodies reflect specularly (adiabatic walls), so
//!   `Ch ≈ 0` to fixed-point rounding — the distribution is reported
//!   because it pins that adiabaticity, and because it becomes the heat
//!   map the moment a thermal wall model lands (ROADMAP).
//!
//! Because specular `Ch` is degenerate by construction, the reduction also
//! reports the **incident** energy-flux coefficient (same `½ n∞ U∞³`
//! normalisation), whose front/rear contrast is the discriminating
//! blunt-body statistic the scenario goldens pin.
//!
//! Besides the per-facet slots the accumulator keeps *global* ledgers
//! updated per impact before any facet binning.  The conservation-closure
//! property test asserts the per-facet sums add up to the global ledgers
//! exactly — facet binning may not lose or double-count a single impact.
//!
//! One attribution caveat: a body resolve may reflect more than once when
//! the first reflection lands still inside the solid (corner impacts; the
//! shapes cap this at 3 bounces).  The *combined* momentum/energy exchange
//! of such a resolve is recorded into the facet of the first penetration
//! point, so facets adjacent to a concave corner can show a small spurious
//! shear/pressure mix from the neighbouring face.  Totals (drag, closure)
//! are unaffected — only the split between corner-adjacent bins.

use dsmc_fixed::Fx;
use dsmc_geom::Body;
use dsmc_kinetics::FreeStream;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Energy sums are stored as `Σ raw² >> ESHIFT` (as in the field sampler)
/// so a long window over a busy facet still fits an `i64`.  The shift is
/// applied per impact, which keeps the sum exactly order-independent.
const ESHIFT: u32 = 23;

/// One set of windowed surface sums (either a facet's or the global
/// ledger's), in raw fixed-point units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SurfaceSums {
    /// Number of body impacts recorded.
    pub impacts: u64,
    /// `Σ (u_pre − u_post)` raw: streamwise momentum delivered to the body.
    pub imp_u: i64,
    /// `Σ (v_pre − v_post)` raw: wall-normal momentum delivered to the body.
    pub imp_v: i64,
    /// `Σ incident (u² + v² + w²) >> ESHIFT` in raw² units.
    pub e_inc: i64,
    /// `Σ reflected (u² + v² + w²) >> ESHIFT` in raw² units.
    pub e_ref: i64,
}

impl SurfaceSums {
    /// Component-wise sum (used by the closure test to fold facets).
    pub fn add(&mut self, o: &SurfaceSums) {
        self.impacts += o.impacts;
        self.imp_u += o.imp_u;
        self.imp_v += o.imp_v;
        self.e_inc += o.e_inc;
        self.e_ref += o.e_ref;
    }
}

/// Per-facet accumulators over a sampling window (plus global ledgers).
///
/// Shared by reference into the parallel boundary pass; all slots are
/// relaxed atomics over integer sums, so the totals are independent of
/// impact ordering and thread count.
pub struct SurfaceAccumulator {
    n_facets: u32,
    steps: AtomicU64,
    count: Vec<AtomicU64>,
    imp_u: Vec<AtomicI64>,
    imp_v: Vec<AtomicI64>,
    e_inc: Vec<AtomicI64>,
    e_ref: Vec<AtomicI64>,
    // Global ledgers, fed per impact *before* facet binning; the closure
    // property test pins Σ(facets) == these.
    tot_count: AtomicU64,
    tot_imp_u: AtomicI64,
    tot_imp_v: AtomicI64,
    tot_e_inc: AtomicI64,
    tot_e_ref: AtomicI64,
}

impl SurfaceAccumulator {
    /// New zeroed accumulator for a body with `n_facets` surface bins.
    pub fn new(n_facets: u32) -> Self {
        assert!(n_facets > 0, "surface sampling needs a facetted body");
        let n = n_facets as usize;
        let azi = || (0..n).map(|_| AtomicI64::new(0)).collect::<Vec<_>>();
        Self {
            n_facets,
            steps: AtomicU64::new(0),
            count: (0..n).map(|_| AtomicU64::new(0)).collect(),
            imp_u: azi(),
            imp_v: azi(),
            e_inc: azi(),
            e_ref: azi(),
            tot_count: AtomicU64::new(0),
            tot_imp_u: AtomicI64::new(0),
            tot_imp_v: AtomicI64::new(0),
            tot_e_inc: AtomicI64::new(0),
            tot_e_ref: AtomicI64::new(0),
        }
    }

    /// Number of surface bins.
    pub fn n_facets(&self) -> u32 {
        self.n_facets
    }

    /// Steps accumulated so far.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Mark one engine step (called once per boundary pass of the window).
    pub fn bump_step(&self) {
        self.steps.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one body impact: pre-resolve velocity `(u0, v0, w0)` and
    /// post-resolve in-plane velocity `(u1, v1)` (`w` is untouched by the
    /// 2D body resolve).  Called from the parallel boundary pass.
    #[inline]
    pub fn record(&self, facet: u32, u0: Fx, v0: Fx, w0: Fx, u1: Fx, v1: Fx) {
        let f = facet.min(self.n_facets - 1) as usize;
        let du = u0.raw() as i64 - u1.raw() as i64;
        let dv = v0.raw() as i64 - v1.raw() as i64;
        let ei = (u0.sq_raw_wide() + v0.sq_raw_wide() + w0.sq_raw_wide()) >> ESHIFT;
        let er = (u1.sq_raw_wide() + v1.sq_raw_wide() + w0.sq_raw_wide()) >> ESHIFT;
        self.count[f].fetch_add(1, Ordering::Relaxed);
        self.imp_u[f].fetch_add(du, Ordering::Relaxed);
        self.imp_v[f].fetch_add(dv, Ordering::Relaxed);
        self.e_inc[f].fetch_add(ei, Ordering::Relaxed);
        self.e_ref[f].fetch_add(er, Ordering::Relaxed);
        self.tot_count.fetch_add(1, Ordering::Relaxed);
        self.tot_imp_u.fetch_add(du, Ordering::Relaxed);
        self.tot_imp_v.fetch_add(dv, Ordering::Relaxed);
        self.tot_e_inc.fetch_add(ei, Ordering::Relaxed);
        self.tot_e_ref.fetch_add(er, Ordering::Relaxed);
    }

    /// Raw sums of facet `k`.
    pub fn facet_sums(&self, k: u32) -> SurfaceSums {
        let i = k as usize;
        SurfaceSums {
            impacts: self.count[i].load(Ordering::Relaxed),
            imp_u: self.imp_u[i].load(Ordering::Relaxed),
            imp_v: self.imp_v[i].load(Ordering::Relaxed),
            e_inc: self.e_inc[i].load(Ordering::Relaxed),
            e_ref: self.e_ref[i].load(Ordering::Relaxed),
        }
    }

    /// The global boundary-exchange ledgers (accumulated per impact,
    /// independent of facet binning).
    pub fn global_sums(&self) -> SurfaceSums {
        SurfaceSums {
            impacts: self.tot_count.load(Ordering::Relaxed),
            imp_u: self.tot_imp_u.load(Ordering::Relaxed),
            imp_v: self.tot_imp_v.load(Ordering::Relaxed),
            e_inc: self.tot_e_inc.load(Ordering::Relaxed),
            e_ref: self.tot_e_ref.load(Ordering::Relaxed),
        }
    }

    /// Export the window's raw sums as plain data (for checkpoints).
    pub fn export(&self) -> SurfaceAccumState {
        let load_i = |v: &[AtomicI64]| {
            v.iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect::<Vec<_>>()
        };
        SurfaceAccumState {
            n_facets: self.n_facets,
            steps: self.steps(),
            count: self
                .count
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            imp_u: load_i(&self.imp_u),
            imp_v: load_i(&self.imp_v),
            e_inc: load_i(&self.e_inc),
            e_ref: load_i(&self.e_ref),
            global: self.global_sums(),
        }
    }

    /// Rebuild an open window from exported sums.
    ///
    /// Panics if the vector lengths disagree with the facet count —
    /// checkpoint decode validates them (with a typed error) before
    /// calling.
    pub fn restore(st: &SurfaceAccumState) -> Self {
        let n = st.n_facets as usize;
        assert!(
            [
                st.count.len(),
                st.imp_u.len(),
                st.imp_v.len(),
                st.e_inc.len(),
                st.e_ref.len(),
            ]
            .iter()
            .all(|&l| l == n),
            "surface accumulator state does not match its facet count"
        );
        let from_i = |v: &[i64]| v.iter().map(|&x| AtomicI64::new(x)).collect::<Vec<_>>();
        Self {
            n_facets: st.n_facets,
            steps: AtomicU64::new(st.steps),
            count: st.count.iter().map(|&x| AtomicU64::new(x)).collect(),
            imp_u: from_i(&st.imp_u),
            imp_v: from_i(&st.imp_v),
            e_inc: from_i(&st.e_inc),
            e_ref: from_i(&st.e_ref),
            tot_count: AtomicU64::new(st.global.impacts),
            tot_imp_u: AtomicI64::new(st.global.imp_u),
            tot_imp_v: AtomicI64::new(st.global.imp_v),
            tot_e_inc: AtomicI64::new(st.global.e_inc),
            tot_e_ref: AtomicI64::new(st.global.e_ref),
        }
    }

    /// Finish the window: reduce the sums into coefficient distributions.
    ///
    /// `body` supplies the facet geometry (must be the body the window
    /// sampled), `fs` the freestream normalisation, `n_inf` the freestream
    /// number density in particles per cell.  With a zero-drift freestream
    /// the coefficients are undefined and come out as NaN.
    pub fn finish(&self, body: &dyn Body, fs: &FreeStream, n_inf: f64) -> SurfaceField {
        assert_eq!(
            body.n_facets(),
            self.n_facets,
            "facet count changed under the window"
        );
        let n = self.n_facets as usize;
        let steps = self.steps().max(1) as f64;
        let one = Fx::ONE_RAW as f64;
        let e_scale = (1u64 << ESHIFT) as f64 / (one * one);
        let u_inf = fs.u_inf();
        let q_inf = 0.5 * n_inf * u_inf * u_inf;
        let p_inf = n_inf * fs.sigma() * fs.sigma();
        let h_norm = 0.5 * n_inf * u_inf * u_inf * u_inf;
        let mut out = SurfaceField {
            steps: self.steps(),
            s: vec![0.0; n],
            len: vec![0.0; n],
            nx: vec![0.0; n],
            ny: vec![0.0; n],
            cp: vec![0.0; n],
            cf: vec![0.0; n],
            ch: vec![0.0; n],
            e_inc_coeff: vec![0.0; n],
            impacts_per_step: vec![0.0; n],
            force_x: 0.0,
            force_y: 0.0,
        };
        for k in 0..n {
            let fac = body.facet(k as u32);
            let sums = self.facet_sums(k as u32);
            // Momentum delivered to the body over the window, physical
            // units (mass 1, velocities in cells/step).
            let fu = sums.imp_u as f64 / one;
            let fv = sums.imp_v as f64 / one;
            out.force_x += fu / steps;
            out.force_y += fv / steps;
            let per = 1.0 / (steps * fac.len);
            // Compressive pressure: delivered momentum against the outward
            // normal.
            let p = -(fu * fac.nx + fv * fac.ny) * per;
            // Shear along the facet tangent t̂ = (ny, −nx).
            let tau = (fu * fac.ny - fv * fac.nx) * per;
            let q_net = 0.5 * (sums.e_inc - sums.e_ref) as f64 * e_scale * per;
            let q_in = 0.5 * sums.e_inc as f64 * e_scale * per;
            out.s[k] = fac.s_mid;
            out.len[k] = fac.len;
            out.nx[k] = fac.nx;
            out.ny[k] = fac.ny;
            out.cp[k] = (p - p_inf) / q_inf;
            out.cf[k] = tau / q_inf;
            out.ch[k] = q_net / h_norm;
            out.e_inc_coeff[k] = q_in / h_norm;
            out.impacts_per_step[k] = sums.impacts as f64 / steps;
        }
        out
    }
}

/// Plain-data image of an open [`SurfaceAccumulator`] window — everything
/// a checkpoint must carry to continue the window bit-exactly, including
/// the global ledgers the conservation-closure tests fold against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SurfaceAccumState {
    /// Number of surface bins.
    pub n_facets: u32,
    /// Steps accumulated so far.
    pub steps: u64,
    /// Per-facet impact counts.
    pub count: Vec<u64>,
    /// Per-facet streamwise momentum delivered (raw).
    pub imp_u: Vec<i64>,
    /// Per-facet wall-normal momentum delivered (raw).
    pub imp_v: Vec<i64>,
    /// Per-facet incident energy sums (`raw² >> ESHIFT`).
    pub e_inc: Vec<i64>,
    /// Per-facet reflected energy sums (`raw² >> ESHIFT`).
    pub e_ref: Vec<i64>,
    /// The global boundary-exchange ledgers.
    pub global: SurfaceSums,
}

/// Windowed surface-coefficient distributions along a body's arc length.
///
/// Produced by [`SurfaceAccumulator::finish`]; all vectors are indexed by
/// facet, ordered by increasing arc length from the body's
/// parameterisation origin (leading edge / upstream nose).
#[derive(Clone, Debug)]
pub struct SurfaceField {
    /// Number of steps averaged.
    pub steps: u64,
    /// Arc-length coordinate of each facet centre (cells).
    pub s: Vec<f64>,
    /// Facet length along the surface (cells).
    pub len: Vec<f64>,
    /// Outward normal x component.
    pub nx: Vec<f64>,
    /// Outward normal y component.
    pub ny: Vec<f64>,
    /// Pressure coefficient `(p − p∞)/q∞`.
    pub cp: Vec<f64>,
    /// Skin-friction coefficient `τ/q∞` (positive along increasing arc).
    pub cf: Vec<f64>,
    /// Heat-transfer coefficient `q̇/(½ n∞ U∞³)` (net energy into the
    /// body; ≈ 0 for the specular bodies, to fixed-point rounding).
    pub ch: Vec<f64>,
    /// Incident kinetic-energy-flux coefficient, same normalisation as
    /// [`SurfaceField::ch`].
    pub e_inc_coeff: Vec<f64>,
    /// Mean body impacts per facet per step.
    pub impacts_per_step: Vec<f64>,
    /// Total streamwise force on the body per step (physical units); the
    /// drag, before normalisation.
    pub force_x: f64,
    /// Total wall-normal force on the body per step.
    pub force_y: f64,
}

impl SurfaceField {
    /// Number of facets.
    pub fn n_facets(&self) -> usize {
        self.s.len()
    }

    /// Length-weighted mean of `vals` over facets whose arc-length centre
    /// lies in `[s0, s1)`; NaN when the range is empty.
    pub fn mean_over(&self, vals: &[f64], s0: f64, s1: f64) -> f64 {
        let mut acc = 0.0;
        let mut total = 0.0;
        for (k, v) in vals.iter().enumerate() {
            if self.s[k] >= s0 && self.s[k] < s1 {
                acc += v * self.len[k];
                total += self.len[k];
            }
        }
        acc / total
    }

    /// Arc-length integral `Σ vals·len` over facets whose centre lies in
    /// `[s0, s1)` (a flux when `vals` is a per-unit-length density).
    pub fn flux_over(&self, vals: &[f64], s0: f64, s1: f64) -> f64 {
        (0..self.n_facets())
            .filter(|&k| self.s[k] >= s0 && self.s[k] < s1)
            .map(|k| vals[k] * self.len[k])
            .sum()
    }

    /// Total arc length of the facets whose centre lies in `[s0, s1)` —
    /// the denominator matching [`SurfaceField::flux_over`]'s integral.
    pub fn arc_len_over(&self, s0: f64, s1: f64) -> f64 {
        (0..self.n_facets())
            .filter(|&k| self.s[k] >= s0 && self.s[k] < s1)
            .map(|k| self.len[k])
            .sum()
    }

    /// Total arc length of the parameterised surface.
    pub fn total_arc(&self) -> f64 {
        self.len.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmc_geom::Wedge;

    fn fx(v: f64) -> Fx {
        Fx::from_f64(v)
    }

    #[test]
    fn specular_head_on_impact_reads_as_pure_pressure() {
        // One particle bounces head-on off the wedge's vertical back face
        // every step: Cp on that facet must equal the analytic
        // 2·n·u²-per-impact value and Cf/Ch must vanish identically.
        let w = Wedge::paper();
        let fs = FreeStream::mach4(0.0);
        let n_inf = 1.0;
        let acc = SurfaceAccumulator::new(w.n_facets());
        let (u0, v0) = (fx(-0.3), fx(0.0));
        // The impact point just inside the back face at mid-height.
        let (xi, yi) = (fx(44.99), fx(3.5));
        let k = w.facet_of(xi, yi);
        let steps = 50;
        for _ in 0..steps {
            acc.record(k, u0, v0, Fx::ZERO, -u0, v0);
            acc.bump_step();
        }
        let f = acc.finish(&w, &fs, n_inf);
        assert_eq!(f.steps, steps);
        let ku = k as usize;
        // p = 2·|u|·(1 impact/step)/len; facet len is 1 cell on the back
        // face (h ≈ 14.43 → 15 bins of h/15).
        let len = f.len[ku];
        let p = 2.0 * 0.3 / len;
        let q = 0.5 * fs.u_inf() * fs.u_inf();
        let p_inf = fs.sigma() * fs.sigma();
        // The fixed-point representation of 0.3 is off by ≲1 LSB, which the
        // 1/(len·q∞) scaling amplifies to ~1e-5 in Cp.
        assert!(
            (f.cp[ku] - (p - p_inf) / q).abs() < 1e-4,
            "cp = {}",
            f.cp[ku]
        );
        assert_eq!(f.cf[ku], 0.0, "pure normal bounce has no shear");
        assert_eq!(f.ch[ku], 0.0, "specular bounce is adiabatic");
        assert!(f.e_inc_coeff[ku] > 0.0);
        assert!((f.impacts_per_step[ku] - 1.0).abs() < 1e-12);
        // Drag: momentum delivered is du = −0.3 − 0.3 = −0.6 per step.
        assert!((f.force_x - (-0.6)).abs() < 1e-6, "fx = {}", f.force_x);
        // Untouched facets stay at the freestream-static baseline.
        let quiet = (ku + 1) % f.n_facets();
        assert_eq!(f.impacts_per_step[quiet], 0.0);
        assert!((f.cp[quiet] - (0.0 - p_inf) / q).abs() < 1e-12);
    }

    #[test]
    fn per_facet_sums_close_against_global_ledger() {
        let w = Wedge::paper();
        let acc = SurfaceAccumulator::new(w.n_facets());
        let mut rng = dsmc_rng::XorShift32::new(9);
        for _ in 0..5000 {
            let k = rng.next_below(w.n_facets());
            let u0 = Fx::from_raw(rng.next_u32() as i32 >> 10);
            let v0 = Fx::from_raw(rng.next_u32() as i32 >> 10);
            let w0 = Fx::from_raw(rng.next_u32() as i32 >> 10);
            acc.record(k, u0, v0, w0, v0, u0);
        }
        let mut folded = SurfaceSums::default();
        for k in 0..acc.n_facets() {
            folded.add(&acc.facet_sums(k));
        }
        assert_eq!(folded, acc.global_sums());
        assert_eq!(folded.impacts, 5000);
    }

    #[test]
    fn mean_and_flux_windows() {
        let f = SurfaceField {
            steps: 1,
            s: vec![0.5, 1.5, 2.5],
            len: vec![1.0, 1.0, 2.0],
            nx: vec![0.0; 3],
            ny: vec![0.0; 3],
            cp: vec![2.0, 4.0, 6.0],
            cf: vec![0.0; 3],
            ch: vec![0.0; 3],
            e_inc_coeff: vec![1.0, 1.0, 1.0],
            impacts_per_step: vec![0.0; 3],
            force_x: 0.0,
            force_y: 0.0,
        };
        assert_eq!(f.mean_over(&f.cp, 0.0, 2.0), 3.0);
        assert_eq!(f.flux_over(&f.cp, 0.0, 3.0), 2.0 + 4.0 + 12.0);
        assert_eq!(f.total_arc(), 4.0);
        assert!(f.mean_over(&f.cp, 10.0, 11.0).is_nan());
    }
}
