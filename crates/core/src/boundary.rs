//! Sub-step 2: boundary conditions.
//!
//! In one parallel pass over the flow particles: reflect off the moving
//! plunger face (hard upstream boundary), specularly reflect off the tunnel
//! walls and off the body, and flag particles that crossed the soft
//! downstream boundary.  Flagged particles are *moved to the reservoir*:
//! their position is re-drawn inside the periodic reservoir strip and their
//! velocities are re-drawn from the rectangular distribution with
//! freestream variance — "after a few time steps collisions with other
//! reservoir particles relaxes these to the correct Gaussian distributions".
//!
//! When the plunger face crosses its trigger it snaps back and the swept
//! void is refilled with particles *taken from the reservoir*, which is the
//! whole point of the reservoir: freestream injection without a single
//! Gaussian sample in the step loop.

use crate::config::{ResLayout, WallModel};
use crate::particles::ParticleStore;
use crate::surface::SurfaceAccumulator;
use dsmc_fixed::Fx;
use dsmc_geom::{Body, Plunger, PlungerEvent, Tunnel, WallOutcome};
use rayon::prelude::*;

/// Caller-owned working state of the boundary pass: the exit/wall-hit
/// masks and the index lists they compact into.  Owned by `Simulation` so
/// steady-state steps perform no heap allocation here either.
#[derive(Clone, Debug, Default)]
pub struct BoundaryScratch {
    exit_mask: Vec<bool>,
    wall_hit: Vec<u8>,
    exits: Vec<u32>,
    pub(crate) res_idx: Vec<u32>,
}

impl BoundaryScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer capacities `[exit_mask, wall_hit, exits, res_idx]` — asserted
    /// stable by the zero-allocation tests.
    pub fn capacities(&self) -> [usize; 4] {
        [
            self.exit_mask.capacity(),
            self.wall_hit.capacity(),
            self.exits.capacity(),
            self.res_idx.capacity(),
        ]
    }
}

/// Constant parameters of the boundary pass.
///
/// Generic over the body so the engine can monomorphise [`enforce`] per
/// body shape — the resolve call then inlines into the per-particle loop
/// instead of dispatching through a vtable 10⁵ times a step.  `dyn Body`
/// (the default) keeps the type-erased form available.
pub struct BoundaryParams<'a, B: Body + ?Sized = dyn Body> {
    /// The tunnel box.
    pub tunnel: &'a Tunnel,
    /// The body in the test section.
    pub body: &'a B,
    /// First reservoir cell index.
    pub res_base: u32,
    /// Reservoir box layout.
    pub res: ResLayout,
    /// Freestream drift velocity `u∞`.
    pub u_drift: Fx,
    /// Half-width (raw units) of the rectangular velocity distribution:
    /// `√3·σ∞` (same variance as the freestream Maxwellian).
    pub rect_half_raw: i32,
    /// Freestream number density (particles per unit cell) used to size
    /// plunger refills.
    pub n_inf: f64,
    /// Wall interaction model.
    pub walls: WallModel,
    /// Wall-temperature velocity scale `σ_w = σ∞·√(T_wall/T∞)` (raw units;
    /// used only by the diffuse model).
    pub sigma_wall_raw: i32,
    /// Surface-flux accumulator, fed at every body resolve.  `None`
    /// outside sampling windows (the body pass then skips the pre-impact
    /// state capture entirely).
    pub surface: Option<&'a SurfaceAccumulator>,
}

/// Tallies of one boundary pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoundaryOutcome {
    /// Particles moved to the reservoir (downstream exits).
    pub exited: u32,
    /// Particles introduced into the void behind the withdrawn plunger.
    pub introduced: u32,
    /// Whether the plunger withdrew this step.
    pub withdrew: bool,
    /// Particles the refill wanted but the reservoir could not supply.
    pub shortfall: u32,
}

/// The per-particle wall/body/plunger resolve of one *flow* particle —
/// the body of [`enforce`]'s parallel pass, extracted so the fused move
/// phase (`crate::movephase`) runs byte-identical physics from its own
/// sweep.  Returns `(wall_hit, exited)`: which diffuse wall was crossed
/// (0 none, 1 bottom, 2 top) and whether the particle left downstream.
///
/// `DO_BODY = false` compiles the body resolve out entirely — used for
/// runs of cells the geometry classification proves cannot reach the
/// body within one step.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn resolve_flow_one<B: Body + ?Sized, const DO_BODY: bool>(
    p: &BoundaryParams<'_, B>,
    plunger: &Plunger,
    diffuse: bool,
    x: &mut Fx,
    y: &mut Fx,
    u: &mut Fx,
    v: &mut Fx,
    w: Fx,
) -> (u8, bool) {
    plunger.reflect(x, u);
    let mut hit = 0u8;
    if diffuse {
        hit = if *y < Fx::ZERO {
            1
        } else if *y >= p.tunnel.height_fx() {
            2
        } else {
            0
        };
    }
    // Position always folds specularly (keeps the spatial distribution
    // right); the diffuse model re-draws the velocity afterwards.
    let wall = p.tunnel.enforce_walls(y, v, *x);
    if DO_BODY {
        match p.surface {
            // Sampling window open: capture the impact state so the
            // resolve's momentum/energy exchange can be binned into the
            // facet the penetration point maps to.
            Some(acc) => {
                let (xi, yi, u0, v0) = (*x, *y, *u, *v);
                if p.body.resolve(x, y, u, v) {
                    acc.record(p.body.facet_of(xi, yi), u0, v0, w, *u, *v);
                }
            }
            None => {
                p.body.resolve(x, y, u, v);
            }
        }
    }
    let exited = wall == WallOutcome::ExitedDownstream || *x >= p.tunnel.width_fx();
    (hit, exited)
}

/// Diffuse re-emission of one wall-hit particle: full accommodation —
/// tangential and rotational components Maxwellian at `T_wall`,
/// wall-normal component from the effusive (flux-weighted) distribution,
/// directed into the gas.  Draw order is part of the determinism
/// contract (u, w, r1, r2 Gaussians, then the normal speed).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn diffuse_reemit_one(
    sigma_wall_raw: i32,
    which: u8,
    u: &mut Fx,
    v: &mut Fx,
    w: &mut Fx,
    r1: &mut Fx,
    r2: &mut Fx,
    rng: &mut dsmc_rng::XorShift32,
) {
    let sigma_w = sigma_wall_raw as f64;
    let gauss = |rng: &mut dsmc_rng::XorShift32| {
        let (g, _) = dsmc_kinetics::sampling::box_muller(rng);
        g
    };
    *u = Fx::from_raw((sigma_w * gauss(rng)) as i32);
    *w = Fx::from_raw((sigma_w * gauss(rng)) as i32);
    *r1 = Fx::from_raw((sigma_w * gauss(rng)) as i32);
    *r2 = Fx::from_raw((sigma_w * gauss(rng)) as i32);
    let speed = sigma_w * (-2.0 * rng.next_f64().max(1e-12).ln()).sqrt();
    let vn = Fx::from_raw(speed as i32);
    *v = if which == 1 { vn } else { -vn };
}

/// Move one downstream exit into the reservoir: position uniform in the
/// reservoir box, velocities re-drawn from the rectangular distribution
/// with freestream variance about the drift.  Draw order (x, y, then
/// u v w r1 r2) is part of the determinism contract.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn exit_redraw_one<B: Body + ?Sized>(
    p: &BoundaryParams<'_, B>,
    x: &mut Fx,
    y: &mut Fx,
    u: &mut Fx,
    v: &mut Fx,
    w: &mut Fx,
    r1: &mut Fx,
    r2: &mut Fx,
    cell: &mut u32,
    rng: &mut dsmc_rng::XorShift32,
) {
    let res_w_fx = Fx::from_int(p.res.w as i32);
    let res_h_fx = Fx::from_int(p.res.h as i32);
    *x = Fx::from_raw(((rng.next_u32() as u64 * res_w_fx.raw() as u64) >> 32) as i32);
    *y = Fx::from_raw(((rng.next_u32() as u64 * res_h_fx.raw() as u64) >> 32) as i32);
    let span = (2 * p.rect_half_raw + 1) as u32;
    let draw = |rng: &mut dsmc_rng::XorShift32| {
        Fx::from_raw(rng.next_below(span) as i32 - p.rect_half_raw)
    };
    let du = draw(rng);
    let dv = draw(rng);
    let dw = draw(rng);
    let dr1 = draw(rng);
    let dr2 = draw(rng);
    *u = p.u_drift + du;
    *v = dv;
    *w = dw;
    *r1 = dr1;
    *r2 = dr2;
    *cell = p.res_base + p.res.cell(*x, *y);
}

/// Refill the void behind a withdrawn plunger face with particles *taken
/// from the reservoir* — the whole point of the reservoir: freestream
/// injection without a single Gaussian sample in the step loop.  Returns
/// `(introduced, shortfall)`.  `res_idx` is caller-owned scratch for the
/// reservoir census.
pub(crate) fn refill_void(
    parts: &mut ParticleStore,
    tunnel: &Tunnel,
    res_base: u32,
    n_inf: f64,
    void_end: Fx,
    res_idx: &mut Vec<u32>,
) -> (u32, u32) {
    let need = (n_inf * void_end.to_f64() * tunnel.height as f64).round() as usize;
    // Reservoir census (the reservoir is cell-sorted, so a strided take
    // draws roughly uniformly across reservoir cells).
    res_idx.clear();
    res_idx.extend(
        parts
            .cell
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c >= res_base).then_some(i as u32)),
    );
    let avail = res_idx.len();
    let take = need.min(avail);
    let shortfall = (need - take) as u32;
    if take > 0 {
        let stride = (avail as f64 / take as f64).max(1.0);
        let h = tunnel.height as f64;
        let void_f = void_end.to_f64();
        for k in 0..take {
            let i = res_idx[(k as f64 * stride) as usize % avail] as usize;
            let rng = &mut parts.rng[i];
            let x = Fx::from_f64(void_f * rng.next_f64());
            let y = Fx::from_f64((h * rng.next_f64()).min(h - 1e-6));
            parts.x[i] = x;
            parts.y[i] = y;
            // Velocities stay as relaxed in the reservoir: they *are*
            // the freestream sample.
            parts.cell[i] = tunnel.cell_index(x, y);
        }
    }
    (take as u32, shortfall)
}

/// Enforce all boundaries; see module docs for the sequence.
pub fn enforce<B: Body + ?Sized>(
    parts: &mut ParticleStore,
    p: &BoundaryParams<'_, B>,
    plunger: &mut Plunger,
    scratch: &mut BoundaryScratch,
) -> BoundaryOutcome {
    let mut out = BoundaryOutcome::default();
    let n = parts.len();

    // Parallel wall/body/plunger pass over flow particles, producing the
    // downstream-exit mask and (for diffuse walls) the wall-hit mask.
    // Every slot the later phases read is overwritten here, so the scratch
    // needs no re-zeroing.
    let exit_mask = &mut scratch.exit_mask;
    let wall_hit = &mut scratch.wall_hit; // 0 none, 1 bottom, 2 top
    exit_mask.resize(n, false);
    wall_hit.resize(n, 0);
    let diffuse = matches!(p.walls, WallModel::Diffuse { .. });
    {
        let plunger_now = *plunger;
        let res_base = p.res_base;
        let cells = &parts.cell;
        let ws = &parts.w;
        parts
            .x
            .par_iter_mut()
            .zip(parts.y.par_iter_mut())
            .zip(parts.u.par_iter_mut())
            .zip(parts.v.par_iter_mut())
            .zip(ws.par_iter())
            .zip(cells.par_iter())
            .zip(exit_mask.par_iter_mut())
            .zip(wall_hit.par_iter_mut())
            .for_each(|(((((((x, y), u), v), &w), &cell), exit), hit)| {
                if cell >= res_base {
                    *exit = false;
                    *hit = 0;
                    return;
                }
                let (h, e) = resolve_flow_one::<B, true>(p, &plunger_now, diffuse, x, y, u, v, w);
                *hit = h;
                *exit = e;
            });
    }

    // Diffuse re-emission (see `diffuse_reemit_one` for the physics).
    if let WallModel::Diffuse { .. } = p.walls {
        for i in 0..n {
            let which = wall_hit[i];
            if which == 0 || exit_mask[i] {
                continue;
            }
            diffuse_reemit_one(
                p.sigma_wall_raw,
                which,
                &mut parts.u[i],
                &mut parts.v[i],
                &mut parts.w[i],
                &mut parts.r1[i],
                &mut parts.r2[i],
                &mut parts.rng[i],
            );
        }
    }

    // Downstream exits → reservoir.  The exit set is small and
    // data-dependent; a sequential sweep into the reused index list is
    // cheaper than the parallel pack (which would build scan tables the
    // size of the whole population).
    scratch.exits.clear();
    scratch.exits.extend(
        scratch
            .exit_mask
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(i as u32)),
    );
    let exits = &scratch.exits;
    out.exited = exits.len() as u32;
    for &i in exits {
        let i = i as usize;
        exit_redraw_one(
            p,
            &mut parts.x[i],
            &mut parts.y[i],
            &mut parts.u[i],
            &mut parts.v[i],
            &mut parts.w[i],
            &mut parts.r1[i],
            &mut parts.r2[i],
            &mut parts.cell[i],
            &mut parts.rng[i],
        );
    }

    // Plunger: advance, and refill the void on withdrawal.
    if let PlungerEvent::Withdrawn { void_end } = plunger.advance() {
        out.withdrew = true;
        let (introduced, shortfall) = refill_void(
            parts,
            p.tunnel,
            p.res_base,
            p.n_inf,
            void_end,
            &mut scratch.res_idx,
        );
        out.introduced = introduced;
        out.shortfall = shortfall;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmc_geom::{NoBody, Wedge};
    use dsmc_rng::{Perm5, XorShift32};

    fn fx(v: f64) -> Fx {
        Fx::from_f64(v)
    }

    fn push_flow(s: &mut ParticleStore, x: f64, y: f64, u: f64, v: f64) {
        // Well-mixed per-particle seeds, as the engine's init provides
        // (raw small seeds bias xorshift's first outputs).
        let seed = dsmc_rng::SplitMix64::new(s.len() as u64 + 1).next_seed32();
        s.push(
            fx(x),
            fx(y),
            [fx(u), fx(v), Fx::ZERO, Fx::ZERO, Fx::ZERO],
            Perm5::IDENTITY,
            XorShift32::new(seed),
            0,
        );
    }

    fn push_res(s: &mut ParticleStore, base: u32, x: f64) {
        s.push(
            fx(x),
            fx(0.5),
            [fx(0.26), Fx::ZERO, Fx::ZERO, Fx::ZERO, Fx::ZERO],
            Perm5::IDENTITY,
            XorShift32::new(s.len() as u32 + 77),
            base + x as u32,
        );
    }

    fn params<'a>(tunnel: &'a Tunnel, body: &'a dyn Body) -> BoundaryParams<'a, dyn Body + 'a> {
        BoundaryParams {
            tunnel,
            body,
            res_base: tunnel.n_cells(),
            res: ResLayout::for_cells(16),
            u_drift: fx(0.26),
            rect_half_raw: Fx::from_f64(0.08 * 1.2247).raw(),
            n_inf: 4.0,
            walls: WallModel::Specular,
            sigma_wall_raw: 0,
            surface: None,
        }
    }

    #[test]
    fn wall_bounce_applied_to_flow_only() {
        let tunnel = Tunnel::new(20, 10);
        let body = NoBody;
        let p = params(&tunnel, &body);
        let mut plunger = Plunger::new(fx(0.25), fx(3.0));
        let mut s = ParticleStore::default();
        push_flow(&mut s, 5.0, -0.25, 0.1, -0.2);
        push_res(&mut s, p.res_base, 3.0);
        let res_y = s.y[1];
        let out = enforce(&mut s, &p, &mut plunger, &mut BoundaryScratch::new());
        assert_eq!(out.exited, 0);
        assert_eq!(s.y[0], fx(0.25));
        assert_eq!(s.v[0], fx(0.2));
        assert_eq!(s.y[1], res_y, "reservoir particle untouched");
    }

    #[test]
    fn downstream_exit_moves_to_reservoir_with_rect_velocities() {
        let tunnel = Tunnel::new(20, 10);
        let body = NoBody;
        let p = params(&tunnel, &body);
        let mut plunger = Plunger::new(fx(0.25), fx(30.0)); // never withdraws soon
        let mut s = ParticleStore::default();
        push_flow(&mut s, 20.5, 5.0, 0.9, 0.0);
        let out = enforce(&mut s, &p, &mut plunger, &mut BoundaryScratch::new());
        assert_eq!(out.exited, 1);
        assert!(s.cell[0] >= p.res_base);
        assert!(s.x[0] >= Fx::ZERO && s.x[0] < fx(16.0));
        assert!(s.y[0] >= Fx::ZERO && s.y[0] < Fx::ONE);
        // Velocity was re-drawn near the drift with bounded support.
        let du = (s.u[0] - p.u_drift).raw().abs();
        assert!(du <= p.rect_half_raw, "u out of rectangular support");
        assert!(s.v[0].raw().abs() <= p.rect_half_raw);
    }

    #[test]
    fn plunger_withdrawal_pulls_from_reservoir() {
        let tunnel = Tunnel::new(20, 10);
        let body = NoBody;
        let p = params(&tunnel, &body);
        // Face right at the trigger: next advance withdraws.
        let mut plunger = Plunger::new(fx(1.0), fx(1.0));
        let mut s = ParticleStore::default();
        for i in 0..200 {
            push_res(&mut s, p.res_base, (i % 16) as f64 + 0.5);
        }
        let out = enforce(&mut s, &p, &mut plunger, &mut BoundaryScratch::new());
        assert!(out.withdrew);
        // need = n_inf · void(1.0) · H(10) = 40.
        assert_eq!(out.introduced, 40);
        assert_eq!(out.shortfall, 0);
        let in_flow = s.cell.iter().filter(|&&c| c < p.res_base).count();
        assert_eq!(in_flow, 40);
        // Introduced particles sit in the void and keep the drift velocity.
        for i in 0..s.len() {
            if s.cell[i] < p.res_base {
                assert!(s.x[i] < fx(1.0));
                assert_eq!(s.u[i], fx(0.26));
            }
        }
    }

    #[test]
    fn refill_shortfall_reported() {
        let tunnel = Tunnel::new(20, 10);
        let body = NoBody;
        let p = params(&tunnel, &body);
        let mut plunger = Plunger::new(fx(1.0), fx(1.0));
        let mut s = ParticleStore::default();
        for _ in 0..10 {
            push_res(&mut s, p.res_base, 2.5);
        }
        let out = enforce(&mut s, &p, &mut plunger, &mut BoundaryScratch::new());
        assert_eq!(out.introduced, 10);
        assert_eq!(out.shortfall, 30);
    }

    #[test]
    fn wedge_reflection_happens_in_boundary_pass() {
        let tunnel = Tunnel::new(64, 40);
        let body = Wedge::new(14.0, 16.0, 30.0);
        let p = BoundaryParams {
            tunnel: &tunnel,
            body: &body,
            res_base: tunnel.n_cells(),
            res: ResLayout::for_cells(16),
            u_drift: fx(0.26),
            rect_half_raw: Fx::from_f64(0.1).raw(),
            n_inf: 4.0,
            walls: WallModel::Specular,
            sigma_wall_raw: 0,
            surface: None,
        };
        let mut plunger = Plunger::new(fx(0.25), fx(60.0));
        let mut s = ParticleStore::default();
        push_flow(&mut s, 16.0, 0.5, 0.3, -0.1); // inside the ramp toe
        assert!(body.contains(s.x[0], s.y[0]));
        enforce(&mut s, &p, &mut plunger, &mut BoundaryScratch::new());
        assert!(
            !body.contains(s.x[0], s.y[0]),
            "particle pushed out of body"
        );
    }

    #[test]
    fn body_impacts_feed_the_surface_accumulator() {
        let tunnel = Tunnel::new(64, 40);
        let body = Wedge::new(14.0, 16.0, 30.0);
        let acc = SurfaceAccumulator::new(body.n_facets());
        let p = BoundaryParams {
            tunnel: &tunnel,
            body: &body,
            res_base: tunnel.n_cells(),
            res: ResLayout::for_cells(16),
            u_drift: fx(0.26),
            rect_half_raw: Fx::from_f64(0.1).raw(),
            n_inf: 4.0,
            walls: WallModel::Specular,
            sigma_wall_raw: 0,
            surface: Some(&acc),
        };
        let mut plunger = Plunger::new(fx(0.25), fx(60.0));
        let mut s = ParticleStore::default();
        push_flow(&mut s, 16.0, 0.5, 0.3, -0.1); // inside the ramp toe
        push_flow(&mut s, 40.0, 20.0, 0.1, 0.0); // far from the body
        let (u0, v0) = (s.u[0], s.v[0]);
        let facet = body.facet_of(s.x[0], s.y[0]);
        enforce(&mut s, &p, &mut plunger, &mut BoundaryScratch::new());
        let g = acc.global_sums();
        assert_eq!(g.impacts, 1, "exactly the penetrating particle recorded");
        assert_eq!(
            acc.facet_sums(facet).impacts,
            1,
            "recorded into the impact-point facet"
        );
        // The recorded impulse is exactly the resolve's velocity change.
        assert_eq!(g.imp_u, u0.raw() as i64 - s.u[0].raw() as i64);
        assert_eq!(g.imp_v, v0.raw() as i64 - s.v[0].raw() as i64);
    }

    #[test]
    fn plunger_face_sweeps_particles() {
        let tunnel = Tunnel::new(20, 10);
        let body = NoBody;
        let p = params(&tunnel, &body);
        let mut plunger = Plunger::new(fx(0.5), fx(10.0));
        plunger.face = fx(2.0);
        let mut s = ParticleStore::default();
        push_flow(&mut s, 1.5, 5.0, -0.1, 0.0);
        enforce(&mut s, &p, &mut plunger, &mut BoundaryScratch::new());
        assert!(s.x[0] > fx(2.0), "swept ahead of the face");
        assert!(s.u[0] > fx(0.5), "picked up at least the face speed");
    }

    #[test]
    fn diffuse_wall_re_emits_into_the_gas() {
        let tunnel = Tunnel::new(20, 10);
        let body = NoBody;
        let mut p = params(&tunnel, &body);
        let sigma = Fx::from_f64(0.06);
        p.walls = WallModel::Diffuse { t_wall: 1.0 };
        p.sigma_wall_raw = sigma.raw();
        let mut plunger = Plunger::new(fx(0.25), fx(60.0));
        let mut s = ParticleStore::default();
        // A swarm of particles that just crossed the bottom wall with a
        // common incoming velocity.
        for k in 0..400 {
            push_flow(&mut s, 2.0 + (k % 16) as f64, -0.2, 0.3, -0.4);
        }
        enforce(&mut s, &p, &mut plunger, &mut BoundaryScratch::new());
        let mut mean_u = 0.0;
        for i in 0..s.len() {
            assert!(s.y[i] >= Fx::ZERO, "position folded back inside");
            assert!(s.v[i] > Fx::ZERO, "re-emitted away from the bottom wall");
            mean_u += s.u[i].to_f64();
        }
        mean_u /= s.len() as f64;
        // Full accommodation: the tangential drift (0.3) is destroyed.
        assert!(
            mean_u.abs() < 0.02,
            "no-slip: mean u after re-emission {mean_u}"
        );
        // The speeds are thermal at sigma, not the incoming 0.5-magnitude.
        let var_u: f64 = s.u.iter().map(|u| u.to_f64().powi(2)).sum::<f64>() / s.len() as f64;
        assert!(
            (var_u / (0.06 * 0.06) - 1.0).abs() < 0.3,
            "wall-temperature variance"
        );
    }

    #[test]
    fn hot_diffuse_wall_heats_the_re_emitted_gas() {
        let tunnel = Tunnel::new(20, 10);
        let body = NoBody;
        let mut p = params(&tunnel, &body);
        let sigma = 0.06f64;
        p.walls = WallModel::Diffuse { t_wall: 4.0 };
        p.sigma_wall_raw = Fx::from_f64(sigma * 2.0).raw(); // sqrt(4) = 2
        let mut plunger = Plunger::new(fx(0.25), fx(60.0));
        let mut s = ParticleStore::default();
        for k in 0..400 {
            push_flow(&mut s, 2.0 + (k % 16) as f64, 10.1, 0.0, 0.3);
        }
        enforce(&mut s, &p, &mut plunger, &mut BoundaryScratch::new());
        let var_u: f64 = s.u.iter().map(|u| u.to_f64().powi(2)).sum::<f64>() / s.len() as f64;
        let ratio = var_u / (sigma * sigma);
        assert!(
            (ratio - 4.0).abs() < 1.2,
            "T_wall = 4 T_inf: variance ratio {ratio}"
        );
        assert!(
            s.v.iter().all(|v| *v < Fx::ZERO),
            "emitted downward from the top wall"
        );
    }
}
