//! Diagnostics: conservation ledgers and per-substep timings.
//!
//! The paper reports the distribution of computational time over the four
//! sub-steps (motion+boundaries 14%, sort 27%, selection 20%, collision
//! 39%); [`StepTimings`] reproduces that bookkeeping for our backend, and
//! [`Diagnostics`] carries the physical ledgers (populations, collision
//! counts, exact fixed-point energy/momentum totals).

use std::time::Duration;

/// The timed phases of one simulation step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Substep {
    /// Collisionless motion (sub-step 1; the two-step pipeline only).
    Motion,
    /// Boundary conditions (folded into sub-step 1 in the paper's table;
    /// the two-step pipeline only).
    Boundary,
    /// The fused single-sweep move phase: motion + boundary + cell
    /// refresh + key pack + first radix histogram, one traversal (the
    /// fused pipeline's replacement for `Motion` + `Boundary` + the
    /// sort's pair-build sweep).
    Move,
    /// The randomised cell-key sort (sub-step 3's first half; under the
    /// fused pipeline this is the rank + send only — pair building
    /// happens inside [`Substep::Move`]).
    Sort,
    /// Selection of collision partners (sub-step 3's second half).
    Select,
    /// Collision of selected partners (sub-step 4).
    Collide,
    /// Optional sampling/averaging pass.
    Sample,
}

/// Accumulated wall-clock time per substep.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepTimings {
    /// Motion time.
    pub motion: Duration,
    /// Boundary time.
    pub boundary: Duration,
    /// Fused move-phase time (motion + boundary + key build in one
    /// sweep; zero under the two-step pipeline).
    pub move_phase: Duration,
    /// Sort time (rank + reorder; plus the key build under the two-step
    /// pipeline).
    pub sort: Duration,
    /// Partner-selection time.
    pub select: Duration,
    /// Collision time.
    pub collide: Duration,
    /// Sampling time.
    pub sample: Duration,
    /// Number of steps accumulated.
    pub steps: u64,
}

impl StepTimings {
    /// Add a measured duration to a phase.
    pub fn add(&mut self, phase: Substep, d: Duration) {
        match phase {
            Substep::Motion => self.motion += d,
            Substep::Boundary => self.boundary += d,
            Substep::Move => self.move_phase += d,
            Substep::Sort => self.sort += d,
            Substep::Select => self.select += d,
            Substep::Collide => self.collide += d,
            Substep::Sample => self.sample += d,
        }
    }

    /// Total time across the four algorithmic phases (sampling excluded,
    /// matching the paper's accounting).
    pub fn total_algorithmic(&self) -> Duration {
        self.motion + self.boundary + self.move_phase + self.sort + self.select + self.collide
    }

    /// The paper's four buckets as fractions summing to 1:
    /// `[motion+boundary, sort, select, collide]`.  The fused move phase
    /// covers motion + boundary *and* the sort's key build; it is
    /// reported in the first bucket, which therefore slightly overstates
    /// that bucket (by the pair-build share) under the fused pipeline.
    pub fn paper_buckets(&self) -> [f64; 4] {
        let tot = self.total_algorithmic().as_secs_f64();
        if tot == 0.0 {
            return [0.0; 4];
        }
        [
            (self.motion + self.boundary + self.move_phase).as_secs_f64() / tot,
            self.sort.as_secs_f64() / tot,
            self.select.as_secs_f64() / tot,
            self.collide.as_secs_f64() / tot,
        ]
    }

    /// Mean wall-clock microseconds per particle per step, the paper's
    /// figure-of-merit (7.2 µs on 32k CM-2 processors; the flow population
    /// is the denominator, "10% less than the total number of particles").
    pub fn us_per_particle_step(&self, flow_particles: usize) -> f64 {
        if self.steps == 0 || flow_particles == 0 {
            return 0.0;
        }
        self.total_algorithmic().as_secs_f64() * 1e6 / (self.steps as f64 * flow_particles as f64)
    }

    /// Reset all accumulators.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Physical ledgers of a running simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Diagnostics {
    /// Steps taken so far.
    pub steps: u64,
    /// Particles currently in the flow.
    pub n_flow: usize,
    /// Particles currently in the reservoir.
    pub n_reservoir: usize,
    /// Candidate pairs examined since start.
    pub candidates: u64,
    /// Collisions performed since start.
    pub collisions: u64,
    /// Particles that exited downstream since start.
    pub exited: u64,
    /// Particles introduced at the inlet since start.
    pub introduced: u64,
    /// Plunger withdrawals since start.
    pub plunger_cycles: u64,
    /// Exact total energy (raw² units, all five components).
    pub energy_raw: i128,
    /// Exact total momentum (raw units) per component.
    pub momentum_raw: [i64; 5],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_normalise() {
        let mut t = StepTimings::default();
        t.add(Substep::Motion, Duration::from_millis(10));
        t.add(Substep::Boundary, Duration::from_millis(4));
        t.add(Substep::Sort, Duration::from_millis(27));
        t.add(Substep::Select, Duration::from_millis(20));
        t.add(Substep::Collide, Duration::from_millis(39));
        t.add(Substep::Sample, Duration::from_millis(500)); // excluded
        let b = t.paper_buckets();
        assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((b[0] - 0.14).abs() < 1e-9);
        assert!((b[3] - 0.39).abs() < 1e-9);
    }

    #[test]
    fn us_per_particle() {
        let mut t = StepTimings::default();
        t.add(Substep::Collide, Duration::from_secs(1));
        t.steps = 10;
        // 1 s over 10 steps and 100k particles = 1 µs/particle/step.
        assert!((t.us_per_particle_step(100_000) - 1.0).abs() < 1e-9);
        assert_eq!(t.us_per_particle_step(0), 0.0);
        assert_eq!(StepTimings::default().us_per_particle_step(10), 0.0);
    }

    #[test]
    fn zero_timings_give_zero_buckets() {
        assert_eq!(StepTimings::default().paper_buckets(), [0.0; 4]);
    }

    #[test]
    fn reset_clears() {
        let mut t = StepTimings::default();
        t.add(Substep::Sort, Duration::from_secs(1));
        t.steps = 3;
        t.reset();
        assert_eq!(t.steps, 0);
        assert_eq!(t.sort, Duration::ZERO);
    }
}
