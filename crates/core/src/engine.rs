//! The simulation driver: four data-parallel sub-steps per time step.

use crate::boundary::{self, BoundaryParams, BoundaryScratch};
use crate::collide;
use crate::config::{PipelineMode, ResLayout, RngMode, SimConfig, SortMode, WallModel};
use crate::diag::{Diagnostics, StepTimings, Substep};
use crate::init;
use crate::motion;
use crate::movephase::{self, KeyPack, MoveOutcome, MoveScratch};
use crate::particles::ParticleStore;
use crate::sample::{FieldAccumulator, SampledField};
use crate::sortstep::{self, key_bits_for, SortWorkspace};
use crate::surface::{SurfaceAccumulator, SurfaceField};
use dsmc_datapar::{bounds_rank_supported, first_pass_bits, PAR_THRESHOLD};
use dsmc_fixed::{Fx, Rounding};
use dsmc_geom::{
    Body, CellClassifier, Cylinder, FlatPlate, ForwardStep, NoBody, Plunger, PlungerEvent, Tunnel,
    Wedge,
};
use dsmc_kinetics::{FreeStream, SelectionTable};
use std::sync::Arc;
use std::time::Instant;

/// Concrete body shape for the monomorphised boundary pass: resolving a
/// particle against the body inlines into the per-particle loop instead
/// of dispatching through the `dyn Body` vtable 10⁵ times a step.
#[derive(Clone, Debug)]
enum MonoBody {
    None(NoBody),
    Wedge(Wedge),
    Step(ForwardStep),
    Plate(FlatPlate),
    Cylinder(Cylinder),
}

impl MonoBody {
    fn build(spec: &crate::config::BodySpec) -> Self {
        use crate::config::BodySpec;
        match *spec {
            BodySpec::None => MonoBody::None(NoBody),
            BodySpec::Wedge {
                x0,
                base,
                angle_deg,
            } => MonoBody::Wedge(Wedge::new(x0, base, angle_deg)),
            BodySpec::Step { x0, x1, h } => MonoBody::Step(ForwardStep::new(x0, x1, h)),
            BodySpec::Plate { x0, h } => MonoBody::Plate(FlatPlate::new(x0, h)),
            BodySpec::Cylinder { cx, cy, r } => MonoBody::Cylinder(Cylinder::new(cx, cy, r)),
        }
    }
}

/// A running particle simulation (the paper's full wind-tunnel system).
pub struct Simulation {
    cfg: SimConfig,
    tunnel: Tunnel,
    body: Arc<dyn Body>,
    body_mono: MonoBody,
    fs: FreeStream,
    sel: SelectionTable,
    volumes: Vec<f64>,
    parts: ParticleStore,
    plunger: Plunger,
    res_base: u32,
    res: ResLayout,
    res_w_fx: Fx,
    res_h_fx: Fx,
    key_bits: u32,
    rounding: Rounding,
    rng_mode: RngMode,
    decisions: Vec<u8>,
    bounds: Vec<u32>,
    order: Vec<u32>,
    sort_ws: SortWorkspace,
    boundary_scratch: BoundaryScratch,
    classifier: CellClassifier,
    move_scratch: MoveScratch,
    move_by_kind: [u64; 4],
    max_speed_raw: u32,
    timings: StepTimings,
    sampler: Option<FieldAccumulator>,
    surf_sampler: Option<SurfaceAccumulator>,
    steps: u64,
    candidates: u64,
    collisions: u64,
    exited: u64,
    introduced: u64,
    plunger_cycles: u64,
    // Temporal-coherence sort ledger: which rank path each fused step
    // took, and the move sweep's mover counts that drive the choice.
    sort_incremental_steps: u64,
    sort_full_steps: u64,
    mover_sum: u64,
    mover_particle_sum: u64,
    mover_threshold: f64,
}

/// Default mover-fraction ceiling for the incremental rank.  The repair's
/// cost is nearly mover-independent (its scatter and per-segment sorts
/// touch every particle regardless), so the ceiling exists to bound the
/// serial counting-sort scatter on highly-parallel hosts, not to protect
/// single-core throughput; `profile_sort` records the measured mover
/// histograms that justify the default.
pub const DEFAULT_MOVER_THRESHOLD: f64 = 0.5;

/// Which particle column [`Simulation::inject_fault`] corrupts.
///
/// Test/fault-injection surface: each class is crafted so a specific
/// [`crate::sentinel`] check catches it (see `inject_fault` for the
/// physics of why).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// Kick the out-of-plane velocity `w` of a block of particles —
    /// trips the momentum-budget sentinel (and the energy pin in small
    /// populations) while leaving 2-D advection untouched.
    OutOfPlaneVelocity,
    /// Spike one particle's streamwise velocity `u` far past the
    /// classifier halo — trips the velocity-halo sentinel.
    StreamwiseVelocity,
    /// Rotate one particle's cached cell index to a different (still
    /// in-range) cell — trips the segment-consistency sentinel.
    CellIndex,
}

impl Simulation {
    /// Build and initialise a simulation from a configuration.
    ///
    /// Panics on an invalid configuration; services that must survive bad
    /// input use [`Simulation::try_new`].
    pub fn new(cfg: SimConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("invalid SimConfig: {e}"))
    }

    /// Build and initialise a simulation, reporting configuration
    /// problems as a typed [`crate::config::ConfigError`] instead of panicking.
    pub fn try_new(cfg: SimConfig) -> Result<Self, crate::config::ConfigError> {
        let cfg = cfg.try_validated()?;
        let mut sim = Self::shell(cfg);
        sim.parts = init::populate(
            &sim.cfg,
            &sim.tunnel,
            sim.body.as_ref(),
            &sim.fs,
            &sim.volumes,
        );
        sim.decisions.reserve(sim.parts.len());
        // Establish sorted order once so `bounds` is valid before step 1.
        sim.sort_phase();
        Ok(sim)
    }

    /// Everything [`Simulation::new`] derives from the configuration alone
    /// — geometry, kinetics tables, classifier, scratch — with *no*
    /// particles and no initial sort.  `new` populates and sorts on top of
    /// this; [`Simulation::resume`] instead installs a snapshot's particle
    /// state verbatim (re-sorting would consume per-particle jitter draws
    /// an uninterrupted run never made, breaking resume bit-identity).
    /// `cfg` must already be validated/normalised: `try_new` and
    /// [`Simulation::resume`] both run `try_validated` first and surface
    /// failures as typed errors.
    fn shell(cfg: SimConfig) -> Self {
        let tunnel = Tunnel::new(cfg.tunnel_w, cfg.tunnel_h);
        let body = cfg.body.build();
        let body_mono = MonoBody::build(&cfg.body);
        let fs = cfg.freestream();
        let res = ResLayout::for_cells(cfg.reservoir_cells);
        let volumes = init::cell_volumes(&tunnel, body.as_ref(), res);
        let sel = SelectionTable::build(
            &volumes,
            fs.p_inf(),
            cfg.n_per_cell,
            cfg.model,
            fs.mean_relative_speed(),
        );
        let res_base = tunnel.n_cells();
        let total_cells = res_base + res.total();
        let key_bits = key_bits_for(total_cells, cfg.jitter_bits);
        let plunger = Plunger::new(Fx::from_f64(fs.u_inf()), Fx::from_f64(cfg.plunger_trigger));
        // The halo invariant's speed bound (cells/step): drift plus a
        // six-sigma thermal margin (widened to the wall temperature under
        // diffuse walls).  The move phase guards every particle against
        // this bound individually — a rare faster outlier just takes the
        // full resolve path, and `track_halo` rebuilds the classifier if
        // the flow ever outgrows the bound for good.
        let t_scale = match cfg.walls {
            WallModel::Specular => 1.0,
            WallModel::Diffuse { t_wall } => t_wall.sqrt().max(1.0),
        };
        let halo = (fs.u_inf().abs() + 6.0 * fs.sigma() * t_scale).max(1.0);
        let classifier = CellClassifier::build(&tunnel, body.as_ref(), cfg.plunger_trigger, halo);
        let mut move_scratch = MoveScratch::new();
        move_scratch.reserve_segments((total_cells + 1) as usize);
        Self {
            res,
            res_w_fx: Fx::from_int(res.w as i32),
            res_h_fx: Fx::from_int(res.h as i32),
            rounding: cfg.rounding,
            rng_mode: cfg.rng_mode,
            cfg,
            tunnel,
            body,
            body_mono,
            fs,
            sel,
            volumes,
            parts: ParticleStore::default(),
            plunger,
            res_base,
            key_bits,
            decisions: Vec::new(),
            bounds: Vec::new(),
            order: Vec::new(),
            sort_ws: SortWorkspace::new(),
            boundary_scratch: BoundaryScratch::new(),
            classifier,
            move_scratch,
            move_by_kind: [0; 4],
            max_speed_raw: 0,
            timings: StepTimings::default(),
            sampler: None,
            surf_sampler: None,
            steps: 0,
            candidates: 0,
            collisions: 0,
            exited: 0,
            introduced: 0,
            plunger_cycles: 0,
            sort_incremental_steps: 0,
            sort_full_steps: 0,
            mover_sum: 0,
            mover_particle_sum: 0,
            mover_threshold: DEFAULT_MOVER_THRESHOLD,
        }
    }

    /// Sub-step 2 with a concrete body type, so `resolve` inlines into the
    /// per-particle loop.
    fn boundary_phase<B: Body + ?Sized>(&mut self, body: &B) -> boundary::BoundaryOutcome {
        let u_drift = Fx::from_f64(self.fs.u_inf());
        let rect_half_raw = Fx::from_f64(self.fs.sigma() * 3f64.sqrt()).raw();
        let sigma_wall_raw = match self.cfg.walls {
            WallModel::Specular => 0,
            WallModel::Diffuse { t_wall } => Fx::from_f64(self.fs.sigma() * t_wall.sqrt()).raw(),
        };
        let params = BoundaryParams {
            tunnel: &self.tunnel,
            body,
            res_base: self.res_base,
            res: self.res,
            u_drift,
            rect_half_raw,
            n_inf: self.cfg.n_per_cell,
            walls: self.cfg.walls,
            sigma_wall_raw,
            surface: self.surf_sampler.as_ref(),
        };
        match self.cfg.pipeline {
            PipelineMode::Fused => boundary::enforce(
                &mut self.parts,
                &params,
                &mut self.plunger,
                &mut self.boundary_scratch,
            ),
            // Pre-refactor behaviour: fresh mask buffers every step.
            PipelineMode::TwoStep => boundary::enforce(
                &mut self.parts,
                &params,
                &mut self.plunger,
                &mut BoundaryScratch::new(),
            ),
        }
    }

    /// The rank-seeding plan for the current population: whether the
    /// move sweep should pre-count the first radix digit (only when the
    /// bounds-emitting radix rank will actually run and read it), and
    /// that pass's digit width.
    fn seed_plan(&self) -> (bool, u32) {
        let cell_bits = self.key_bits - self.cfg.jitter_bits;
        // Both steady-state ranks read it: the seeded full rank skips its
        // first counting pass, and the incremental repair's jitter
        // histogram is the same first digit summed over the chunk rows —
        // so the sweep seeds for either sort mode.
        let seeded = bounds_rank_supported(cell_bits) && self.parts.len() >= PAR_THRESHOLD;
        (seeded, first_pass_bits(cell_bits, self.cfg.jitter_bits))
    }

    /// The fused single-sweep move phase with a concrete body type (see
    /// [`crate::movephase`]): advance, resolve boundaries, refresh cells
    /// and — on ordinary steps (`pack_keys`) — pack the jittered sort
    /// pairs and seed the first radix histogram, in one traversal
    /// dispatched by the per-cell geometry classification.
    fn move_phase_mono<B: Body>(&mut self, body: &B, pack_keys: bool) -> MoveOutcome {
        let u_drift = Fx::from_f64(self.fs.u_inf());
        let rect_half_raw = Fx::from_f64(self.fs.sigma() * 3f64.sqrt()).raw();
        let sigma_wall_raw = match self.cfg.walls {
            WallModel::Specular => 0,
            WallModel::Diffuse { t_wall } => Fx::from_f64(self.fs.sigma() * t_wall.sqrt()).raw(),
        };
        let params = BoundaryParams {
            tunnel: &self.tunnel,
            body,
            res_base: self.res_base,
            res: self.res,
            u_drift,
            rect_half_raw,
            n_inf: self.cfg.n_per_cell,
            walls: self.cfg.walls,
            sigma_wall_raw,
            surface: self.surf_sampler.as_ref(),
        };
        let keys = if pack_keys {
            let (seeded, first_bits) = self.seed_plan();
            let (pairs, hist) = self
                .sort_ws
                .move_buffers(self.parts.len(), first_bits, seeded);
            Some(KeyPack {
                pairs,
                hist,
                jitter_bits: self.cfg.jitter_bits,
                first_bits,
                rng_mode: self.rng_mode,
            })
        } else {
            None
        };
        movephase::move_phase(
            &mut self.parts,
            &params,
            &self.classifier,
            &self.plunger,
            &self.bounds,
            self.res_w_fx,
            self.res_h_fx,
            keys,
            &mut self.move_scratch,
        )
    }

    /// Record the step's observed speed bound; if the flow outgrew the
    /// classifier's halo, rebuild the classification with twice the
    /// observed bound so rebuilds stay rare.  (Correctness never depends
    /// on this: the sweep re-routes every faster-than-halo particle
    /// through the full resolve path individually.)
    fn track_halo(&mut self, max_speed_raw: u32) {
        self.max_speed_raw = self.max_speed_raw.max(max_speed_raw);
        let halo_raw = Fx::from_f64(self.classifier.halo()).raw() as u32;
        if max_speed_raw > halo_raw {
            let observed = max_speed_raw as f64 / (1u64 << Fx::FRAC_BITS) as f64;
            self.classifier = CellClassifier::build(
                &self.tunnel,
                self.body.as_ref(),
                self.cfg.plunger_trigger,
                2.0 * observed,
            );
        }
    }

    fn sort_phase(&mut self) {
        match self.cfg.pipeline {
            PipelineMode::Fused => sortstep::sort_particles_fused(
                &mut self.parts,
                &self.tunnel,
                self.res_base,
                self.res,
                self.cfg.jitter_bits,
                self.key_bits,
                self.rng_mode,
                &mut self.sort_ws,
                &mut self.bounds,
                &mut self.order,
            ),
            PipelineMode::TwoStep => {
                let out = sortstep::sort_particles(
                    &mut self.parts,
                    &self.tunnel,
                    self.res_base,
                    self.res,
                    self.cfg.jitter_bits,
                    self.key_bits,
                    self.rng_mode,
                );
                self.bounds = out.bounds;
                self.order = out.order;
            }
        }
    }

    /// Sub-steps 1 + 2 + 3a of the fused pipeline: the single-sweep move
    /// phase (motion, boundaries, cell refresh, key pack, first radix
    /// histogram — timed as [`Substep::Move`]), then the rank + send of
    /// the pre-packed pairs (timed as [`Substep::Sort`]).
    ///
    /// On the rare plunger-withdrawal step the sweep runs key-less — the
    /// refill repositions reservoir particles *after* the sweep, which
    /// would invalidate packed keys — and the sort falls back to the
    /// separate pair-build path, exactly as the two-step reference
    /// orders its draws.
    fn front_half_fused(&mut self) {
        let t = Instant::now();
        let withdraw = self.plunger.will_withdraw();
        let mono = self.body_mono.clone();
        let out = match &mono {
            MonoBody::None(b) => self.move_phase_mono(b, !withdraw),
            MonoBody::Wedge(b) => self.move_phase_mono(b, !withdraw),
            MonoBody::Step(b) => self.move_phase_mono(b, !withdraw),
            MonoBody::Plate(b) => self.move_phase_mono(b, !withdraw),
            MonoBody::Cylinder(b) => self.move_phase_mono(b, !withdraw),
        };
        self.exited += out.exited as u64;
        for (acc, n) in self.move_by_kind.iter_mut().zip(out.by_kind) {
            *acc += n;
        }
        self.track_halo(out.max_speed_raw);
        if let Some(acc) = &self.surf_sampler {
            acc.bump_step();
        }
        if let PlungerEvent::Withdrawn { void_end } = self.plunger.advance() {
            debug_assert!(withdraw, "will_withdraw must predict the advance");
            self.plunger_cycles += 1;
            let (introduced, _shortfall) = boundary::refill_void(
                &mut self.parts,
                &self.tunnel,
                self.res_base,
                self.cfg.n_per_cell,
                void_end,
                &mut self.boundary_scratch.res_idx,
            );
            self.introduced += introduced as u64;
        }
        self.timings.add(Substep::Move, t.elapsed());

        let t = Instant::now();
        if withdraw {
            // Withdrawal steps always take the full path: the refill just
            // repositioned reservoir particles after the (key-less) sweep,
            // so there are no packed pairs and no trustworthy mover count.
            self.sort_phase();
            self.sort_full_steps += 1;
        } else {
            // Temporal-coherence decision.  The sweep's mover count is the
            // exact number of particles whose cell changed this step and
            // the sole budget authority; the rank itself only re-checks
            // that the previous structure covers this population (it does
            // not on the first step after a resume, or after a two-step
            // interlude), falling back to the full rank when it doesn't.
            // Both paths consume the same sweep-seeded histogram.
            let n = self.parts.len();
            self.mover_sum += out.movers as u64;
            self.mover_particle_sum += n as u64;
            let budget = (self.mover_threshold * n as f64) as u32;
            let total_cells = self.total_cells();
            let (seeded, _) = self.seed_plan();
            let took = self.cfg.sort_mode == SortMode::Incremental
                && out.movers <= budget
                && sortstep::rank_and_send_incremental(
                    &mut self.parts,
                    self.cfg.jitter_bits,
                    total_cells,
                    seeded,
                    &mut self.sort_ws,
                    &mut self.bounds,
                    &mut self.order,
                );
            if took {
                self.sort_incremental_steps += 1;
            } else {
                sortstep::rank_and_send(
                    &mut self.parts,
                    self.key_bits,
                    self.cfg.jitter_bits,
                    seeded,
                    &mut self.sort_ws,
                    &mut self.bounds,
                    &mut self.order,
                );
                self.sort_full_steps += 1;
            }
        }
        self.timings.add(Substep::Sort, t.elapsed());
    }

    /// Sub-steps 1 + 2 + 3a of the pre-refactor reference pipeline:
    /// advect, enforce boundaries, then the key-build + rank + send sort
    /// — three separate streams over the particle columns.
    fn front_half_two_step(&mut self) {
        // 1) Collisionless motion.
        let t = Instant::now();
        motion::advect(&mut self.parts, self.res_base, self.res_w_fx, self.res_h_fx);
        self.timings.add(Substep::Motion, t.elapsed());

        // 2) Boundary conditions (the seed's vtable dispatch).
        let t = Instant::now();
        let body = Arc::clone(&self.body);
        let out = self.boundary_phase(body.as_ref());
        self.exited += out.exited as u64;
        self.introduced += out.introduced as u64;
        self.plunger_cycles += out.withdrew as u64;
        if let Some(acc) = &self.surf_sampler {
            acc.bump_step();
        }
        self.timings.add(Substep::Boundary, t.elapsed());

        // 3a) Sort by randomised cell key.
        let t = Instant::now();
        self.sort_phase();
        self.timings.add(Substep::Sort, t.elapsed());
    }

    /// Advance one time step (the paper's four sub-steps, plus sampling if
    /// a window is open).
    pub fn step(&mut self) {
        match self.cfg.pipeline {
            PipelineMode::Fused => self.front_half_fused(),
            PipelineMode::TwoStep => self.front_half_two_step(),
        }

        // 3b + 4) Selection and collision of partners.  The fused pipeline
        // runs both in one traversal per run of cells (columns stay
        // cache-hot between the sub-loops, which time themselves to keep
        // the paper's select/collide split); the pre-refactor pipeline
        // keeps the two separate whole-population phases.
        match self.cfg.pipeline {
            PipelineMode::Fused => {
                let t = Instant::now();
                let out = collide::select_and_collide(
                    &mut self.parts,
                    &self.bounds,
                    &self.sel,
                    self.rounding,
                    self.rng_mode,
                    &mut self.decisions,
                );
                let wall = t.elapsed();
                self.candidates += out.stats.candidates;
                self.collisions += out.stats.collisions;
                // `out.select`/`out.collide` are per-run durations summed
                // across worker threads — CPU time, not wall time.  Keep
                // the buckets wall-clock-comparable with every other
                // substep by splitting the phase's wall time in their
                // proportion (exact on one thread, an attribution estimate
                // on many).
                let cpu_total = out.select + out.collide;
                let select_wall = if cpu_total.is_zero() {
                    wall / 2
                } else {
                    wall.mul_f64(out.select.as_secs_f64() / cpu_total.as_secs_f64())
                };
                self.timings.add(Substep::Select, select_wall);
                self.timings
                    .add(Substep::Collide, wall.saturating_sub(select_wall));
            }
            PipelineMode::TwoStep => {
                let t = Instant::now();
                let cand = collide::select_pairs(
                    &mut self.parts,
                    &self.bounds,
                    &self.sel,
                    self.rng_mode,
                    &mut self.decisions,
                );
                self.candidates += cand;
                self.timings.add(Substep::Select, t.elapsed());

                let t = Instant::now();
                let cols = collide::collide_selected(
                    &mut self.parts,
                    &self.bounds,
                    &self.decisions,
                    self.rounding,
                    self.rng_mode,
                );
                self.collisions += cols;
                self.timings.add(Substep::Collide, t.elapsed());
            }
        }

        // Optional sampling pass.
        if let Some(sampler) = self.sampler.as_mut() {
            let t = Instant::now();
            sampler.accumulate(&self.parts, &self.bounds, self.res_base);
            self.timings.add(Substep::Sample, t.elapsed());
        }

        self.steps += 1;
        self.timings.steps += 1;
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Open a sampling window (subsequent steps accumulate fields, and —
    /// for bodies with a surface parameterisation — surface fluxes).
    pub fn begin_sampling(&mut self) {
        self.sampler = Some(FieldAccumulator::new(self.tunnel.width, self.tunnel.height));
        let n_facets = self.body.n_facets();
        if n_facets > 0 {
            self.surf_sampler = Some(SurfaceAccumulator::new(n_facets));
        }
    }

    /// Close the sampling window and return the averaged fields.
    ///
    /// Panics if no window is open.
    pub fn finish_sampling(&mut self) -> SampledField {
        let sampler = self
            .sampler
            .take()
            .expect("finish_sampling without begin_sampling");
        sampler.finish(
            self.cfg.n_per_cell,
            &self.volumes[..self.res_base as usize],
            self.fs.sigma(),
        )
    }

    /// Close the surface window (if one is open) and return the reduced
    /// Cp/Cf/Ch distributions.  `None` when the body has no surface
    /// parameterisation or no window was opened.
    pub fn finish_surface_sampling(&mut self) -> Option<SurfaceField> {
        self.surf_sampler
            .take()
            .map(|acc| acc.finish(self.body.as_ref(), &self.fs, self.cfg.n_per_cell))
    }

    /// The open surface-flux window, if any (read access for the
    /// conservation-closure tests).
    pub fn surface_sampler(&self) -> Option<&SurfaceAccumulator> {
        self.surf_sampler.as_ref()
    }

    /// The open volume-field window, if any — lets a resumed run tell how
    /// far through a protocol's averaging phase its checkpoint was taken
    /// and continue the window instead of restarting it.
    pub fn field_sampler(&self) -> Option<&FieldAccumulator> {
        self.sampler.as_ref()
    }

    /// Current physical ledgers.
    ///
    /// Population counts come from a binary search over the sorted segment
    /// bounds (flow cells sort before reservoir cells), so `n_flow` costs
    /// O(log segments) instead of an O(N) scan of the cell column; the
    /// energy/momentum totals remain O(N) exact sums.
    pub fn diagnostics(&self) -> Diagnostics {
        let n_flow = self.n_flow();
        Diagnostics {
            steps: self.steps,
            n_flow,
            n_reservoir: self.parts.len() - n_flow,
            candidates: self.candidates,
            collisions: self.collisions,
            exited: self.exited,
            introduced: self.introduced,
            plunger_cycles: self.plunger_cycles,
            energy_raw: self.parts.total_energy_raw(),
            momentum_raw: self.parts.total_momentum_raw(),
        }
    }

    /// Particles currently in the flow: the start of the first reservoir
    /// segment in the sorted bounds (O(log segments)).
    pub fn n_flow(&self) -> usize {
        let n_seg = self.bounds.len().saturating_sub(1);
        let first_res = self.bounds[..n_seg]
            .partition_point(|&start| self.parts.cell[start as usize] < self.res_base);
        self.bounds
            .get(first_res)
            .map_or(self.parts.len(), |&b| b as usize)
    }

    /// Accumulated per-substep wall-clock timings.
    pub fn timings(&self) -> &StepTimings {
        &self.timings
    }

    /// Capacities of every buffer the sort/send hot path owns, in a fixed
    /// order.  The zero-allocation test asserts these are stable across
    /// steps once the simulation has warmed up.
    pub fn hot_path_capacities(&self) -> Vec<usize> {
        let mut caps = vec![
            self.decisions.capacity(),
            self.bounds.capacity(),
            self.order.capacity(),
        ];
        caps.extend(self.sort_ws.capacities());
        caps.extend(self.boundary_scratch.capacities());
        caps.extend(self.parts.back_buffer_capacities());
        caps.extend(self.move_scratch.capacities());
        caps
    }

    /// Fused-step rank paths taken so far: `(incremental, full)`.  Full
    /// counts withdrawal steps, threshold overruns, and first/resumed
    /// steps with no previous structure; the two-step pipeline counts
    /// nothing here.
    pub fn sort_path_counts(&self) -> (u64, u64) {
        (self.sort_incremental_steps, self.sort_full_steps)
    }

    /// Mover statistics from the fused move sweep: `(movers,
    /// particle-steps)` summed over ordinary (non-withdrawal) steps —
    /// divide for the mean mover fraction the threshold is judged
    /// against.
    pub fn mover_stats(&self) -> (u64, u64) {
        (self.mover_sum, self.mover_particle_sum)
    }

    /// Override the mover-fraction ceiling above which the incremental
    /// rank falls back to the full radix sort (default
    /// [`DEFAULT_MOVER_THRESHOLD`]).  Outputs are pinned bit-identical on
    /// both sides of the crossing, so this is a pure performance knob —
    /// tests drive it to force path transitions.
    pub fn set_mover_threshold(&mut self, threshold: f64) {
        self.mover_threshold = threshold;
    }

    /// The geometry-aware cell classification driving the move phase's
    /// dispatch (rebuilt only if the flow outgrows its halo bound).
    pub fn cell_classifier(&self) -> &CellClassifier {
        &self.classifier
    }

    /// Particles dispatched per move-phase run kind `[Free, Walls, Full,
    /// Reservoir]`, accumulated since construction (all zero under the
    /// two-step pipeline).
    pub fn move_dispatch_counts(&self) -> [u64; 4] {
        self.move_by_kind
    }

    /// Largest per-component speed (raw fixed-point units) any particle
    /// has carried into a fused move sweep — the quantity the halo
    /// invariant bounds.
    pub fn max_observed_speed_raw(&self) -> u32 {
        self.max_speed_raw
    }

    /// Deterministically corrupt particle state — the fault-injection
    /// surface for the supervisor test harness.
    ///
    /// Each class models a distinct real failure (bit rot in a column,
    /// a stray write, a stale cache) and is designed so that a specific
    /// [`crate::sentinel`] check catches it.  The corruption is a pure
    /// function of `(target, salt, current state)`: no RNG stream is
    /// consumed, so an uninterrupted reference run and a
    /// corrupt-then-recover run share trajectories exactly.  Returns a
    /// human-readable description of what was damaged (for recovery
    /// logs).
    pub fn inject_fault(&mut self, target: FaultTarget, salt: u64) -> String {
        let n = self.parts.len();
        assert!(n > 0, "cannot inject a fault into an empty simulation");
        let start = (salt as usize) % n;
        match target {
            FaultTarget::OutOfPlaneVelocity => {
                // +4 cells/step of w over a block: a deterministic
                // momentum-ledger jolt (and an energy jolt in small
                // populations).  w does not advect 2-D motion, so the
                // damage persists until a sentinel looks at the ledgers.
                const KICK: i32 = 1 << 25;
                let block = (n / 64).clamp(32.min(n), n);
                for k in 0..block {
                    let i = (start + k) % n;
                    let raw = self.parts.w[i].raw();
                    self.parts.w[i] = Fx::from_raw(raw.saturating_add(KICK));
                }
                format!("w += 4.0 c/s over {block} particles from slot {start}")
            }
            FaultTarget::StreamwiseVelocity => {
                // One particle at 4 c/s streamwise: far past the 3x halo
                // bound for every registry config, yet slow enough that a
                // few move phases neither overflow positions nor matter.
                const SPIKE: i32 = 1 << 25;
                self.parts.u[start] = Fx::from_raw(SPIKE);
                format!("u := 4.0 c/s on particle {start}")
            }
            FaultTarget::CellIndex => {
                // Rotate one cached cell index to a different in-range
                // cell.  The move phase recomputes `cell` from position,
                // so this class self-heals after one step — inject it at
                // a sentinel boundary to model a stale cache caught in
                // the act.
                let total = self.total_cells();
                let old = self.parts.cell[start];
                self.parts.cell[start] = (old + 1) % total;
                format!("cell {old} -> {} on particle {start}", (old + 1) % total)
            }
        }
    }

    /// Reset the timing accumulators (e.g. after warm-up).
    pub fn reset_timings(&mut self) {
        self.timings.reset();
    }

    /// The particle store (read access for analysis tools).
    pub fn particles(&self) -> &ParticleStore {
        &self.parts
    }

    /// Segment bounds of the current sorted order.
    pub fn segment_bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// The permutation applied by the most recent sort (`new[i] =
    /// old[order[i]]`) — consumed by the CM-2 communication analysis.
    pub fn last_sort_order(&self) -> &[u32] {
        &self.order
    }

    /// Total number of particles (flow + reservoir).
    pub fn n_particles(&self) -> usize {
        self.parts.len()
    }

    /// First reservoir cell index.
    pub fn reservoir_base(&self) -> u32 {
        self.res_base
    }

    /// Total cell count, tunnel plus reservoir box — the exclusive upper
    /// bound of the `cell` column (what the segment-consistency sentinel
    /// checks against).
    pub fn total_cells(&self) -> u32 {
        self.res_base + self.res.total()
    }

    /// The tunnel geometry.
    pub fn tunnel(&self) -> &Tunnel {
        &self.tunnel
    }

    /// The freestream state.
    pub fn freestream(&self) -> &FreeStream {
        &self.fs
    }

    /// Per-cell free-volume fractions (flow cells then reservoir cells).
    pub fn volumes(&self) -> &[f64] {
        &self.volumes
    }

    /// The configuration the simulation was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The body in the test section.
    pub fn body(&self) -> &dyn Body {
        self.body.as_ref()
    }
}

// Checkpoint/restart lives in a child module so it can reach the private
// fields above without widening their visibility; the file stays flat in
// `src/` beside the other engine modules.
#[path = "snapshot.rs"]
pub mod snapshot;

// The sharded domain-decomposition engine is likewise a child module: it
// replays the private step loop above per column-block shard and must
// reach the same private state.
#[path = "shard.rs"]
pub mod shard;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BodySpec;

    #[test]
    fn steps_run_and_populations_stay_positive() {
        let mut sim = Simulation::new(SimConfig::small_test());
        sim.run(30);
        let d = sim.diagnostics();
        assert_eq!(d.steps, 30);
        assert!(d.n_flow > 0);
        assert!(d.n_reservoir > 0);
        assert!(d.candidates > 0);
        assert!(d.collisions > 0);
        assert_eq!(d.n_flow + d.n_reservoir, sim.n_particles());
    }

    #[test]
    fn particle_count_is_conserved() {
        let mut sim = Simulation::new(SimConfig::small_test());
        let n0 = sim.n_particles();
        sim.run(100);
        assert_eq!(
            sim.n_particles(),
            n0,
            "particles are never created/destroyed"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let mut a = Simulation::new(SimConfig::small_test());
        let mut b = Simulation::new(SimConfig::small_test());
        a.run(25);
        b.run(25);
        assert_eq!(a.particles().x, b.particles().x);
        assert_eq!(a.particles().u, b.particles().u);
        assert_eq!(a.diagnostics().collisions, b.diagnostics().collisions);
        let mut cfg = SimConfig::small_test();
        cfg.seed += 1;
        let mut c = Simulation::new(cfg);
        c.run(25);
        assert_ne!(a.particles().x, c.particles().x);
    }

    #[test]
    fn incremental_sort_engages_and_matches_full() {
        // A/B the two rank algorithms over enough steps to cross several
        // plunger withdrawals: trajectories must be bitwise identical, and
        // the incremental path must actually carry the steady-state steps
        // (not silently fall back every time).
        let mut cfg = SimConfig::small_test();
        cfg.sort_mode = SortMode::Incremental;
        let mut a = Simulation::new(cfg.clone());
        cfg.sort_mode = SortMode::Full;
        let mut b = Simulation::new(cfg);
        a.run(60);
        b.run(60);
        assert_eq!(a.particles().x, b.particles().x);
        assert_eq!(a.particles().y, b.particles().y);
        assert_eq!(a.particles().u, b.particles().u);
        assert_eq!(a.particles().v, b.particles().v);
        assert_eq!(a.particles().w, b.particles().w);
        assert_eq!(a.particles().cell, b.particles().cell);
        assert_eq!(a.segment_bounds(), b.segment_bounds());
        assert_eq!(a.last_sort_order(), b.last_sort_order());
        assert_eq!(a.diagnostics().collisions, b.diagnostics().collisions);
        let (inc_a, full_a) = a.sort_path_counts();
        assert!(inc_a > 40, "incremental path barely engaged: {inc_a}");
        assert_eq!(
            full_a as usize + inc_a as usize,
            60,
            "every fused step takes exactly one rank path"
        );
        let (inc_b, full_b) = b.sort_path_counts();
        assert_eq!(inc_b, 0, "Full mode must never take the repair path");
        assert_eq!(full_b, 60);
        // Mover accounting ran on every ordinary step, in both modes.
        let (movers, psum) = a.mover_stats();
        assert!(psum > 0 && movers > 0 && movers < psum);
        assert_eq!(a.mover_stats(), b.mover_stats());
    }

    #[test]
    fn threshold_zero_forces_the_full_path_without_changing_state() {
        // Budget 0 rejects every step with at least one mover, driving the
        // fallback; the trajectory must not notice.
        let mut inc = Simulation::new(SimConfig::small_test());
        inc.set_mover_threshold(0.0);
        let mut full = Simulation::new(SimConfig::small_test());
        inc.run(40);
        full.run(40);
        assert_eq!(inc.particles().x, full.particles().x);
        assert_eq!(inc.particles().cell, full.particles().cell);
        assert_eq!(inc.segment_bounds(), full.segment_bounds());
        let (i, f) = inc.sort_path_counts();
        assert_eq!(i, 0, "zero budget must reject the repair every step");
        assert_eq!(f, 40);
    }

    #[test]
    fn no_particle_ends_inside_body_or_outside_tunnel() {
        let mut cfg = SimConfig::small_wedge(0.5);
        cfg.n_per_cell = 8.0;
        cfg.reservoir_fill = 16.0;
        let mut sim = Simulation::new(cfg);
        sim.run(60);
        let p = sim.particles();
        let res_base = sim.reservoir_base();
        let (w, h) = (sim.tunnel().width_fx(), sim.tunnel().height_fx());
        for i in 0..p.len() {
            if p.cell[i] < res_base {
                assert!(p.x[i] >= Fx::ZERO && p.x[i] < w, "x out of tunnel");
                assert!(p.y[i] >= Fx::ZERO && p.y[i] < h, "y out of tunnel");
                assert!(
                    !sim.body().contains(p.x[i], p.y[i]),
                    "particle {i} inside the body"
                );
            } else {
                assert!(p.x[i] >= Fx::ZERO && p.x[i] < sim.res_w_fx);
                assert!(p.y[i] >= Fx::ZERO && p.y[i] < sim.res_h_fx);
            }
        }
    }

    #[test]
    fn flow_keeps_flowing_through_the_tunnel() {
        let mut sim = Simulation::new(SimConfig::small_test());
        sim.run(200);
        let d = sim.diagnostics();
        assert!(d.exited > 0, "supersonic outflow must remove particles");
        assert!(d.plunger_cycles > 0, "plunger must cycle");
        assert!(d.introduced > 0, "inlet must introduce particles");
        // Inflow and outflow balance to within a plunger batch.
        let batch = (sim.cfg.n_per_cell * sim.cfg.plunger_trigger * sim.cfg.tunnel_h as f64) as i64;
        assert!(
            (d.introduced as i64 - d.exited as i64).abs() <= 2 * batch,
            "imbalance: in {} out {}",
            d.introduced,
            d.exited
        );
    }

    #[test]
    fn energy_is_stable_in_a_quiescent_tunnel() {
        // Mach 0: no bulk flow. The only energy sinks are physical — the
        // downstream boundary preferentially removes fast particles whose
        // velocities are then re-drawn at equilibrium (an open system) —
        // so the total should stay within a few percent.  Bit-level
        // conservation of the collision kernel itself is asserted in the
        // `collide` module tests.
        let mut cfg = SimConfig::small_test();
        cfg.mach = 0.0;
        cfg.lambda = 0.5;
        let mut sim = Simulation::new(cfg);
        let e0 = sim.diagnostics().energy_raw;
        sim.run(100);
        let d = sim.diagnostics();
        let rel = (d.energy_raw - e0) as f64 / e0 as f64;
        assert!(
            rel.abs() < 5e-2,
            "energy drift {rel} with stochastic rounding"
        );
    }

    #[test]
    fn sampling_window_produces_freestream_density() {
        let mut sim = Simulation::new(SimConfig::small_test());
        sim.run(50); // settle
        sim.begin_sampling();
        sim.run(100);
        let f = sim.finish_sampling();
        assert_eq!(f.steps, 100);
        // Interior density should hover near freestream (±20% with only
        // 10/cell and 100 steps).
        let mid = f.density_at(8, 6);
        assert!((0.7..1.3).contains(&mid), "ρ/ρ∞ = {mid}");
    }

    #[test]
    fn surface_window_reports_wedge_loads() {
        let mut cfg = SimConfig::small_wedge(0.5);
        cfg.n_per_cell = 8.0;
        cfg.reservoir_fill = 16.0;
        let mut sim = Simulation::new(cfg);
        sim.run(60);
        sim.begin_sampling();
        sim.run(80);
        let _field = sim.finish_sampling();
        let surf = sim.finish_surface_sampling().expect("wedge has facets");
        assert_eq!(surf.steps, 80);
        assert_eq!(surf.n_facets() as u32, sim.body().n_facets());
        // The ramp faces the Mach-4 stream: its Cp must be strongly
        // positive, and the body must feel downstream drag.
        let front: Vec<usize> = (0..surf.n_facets())
            .filter(|&k| surf.nx[k] < 0.0 && surf.ny[k] > 0.0)
            .collect();
        assert!(!front.is_empty());
        let cp_front = front.iter().map(|&k| surf.cp[k]).sum::<f64>() / front.len() as f64;
        assert!(cp_front > 0.3, "front-face mean Cp = {cp_front}");
        assert!(surf.force_x > 0.0, "drag = {}", surf.force_x);
        // Specular bodies are adiabatic: |Ch| stays at rounding-noise
        // level wherever the surface is actually being hit.
        for k in 0..surf.n_facets() {
            if surf.impacts_per_step[k] > 0.5 {
                assert!(
                    surf.ch[k].abs() < 0.05 * surf.e_inc_coeff[k].max(1e-12),
                    "facet {k}: ch {} vs incident {}",
                    surf.ch[k],
                    surf.e_inc_coeff[k]
                );
            }
        }
        // Closing again without a window is None.
        assert!(sim.finish_surface_sampling().is_none());
    }

    #[test]
    fn bodyless_window_has_no_surface_field() {
        let mut sim = Simulation::new(SimConfig::small_test());
        sim.begin_sampling();
        sim.run(5);
        let _ = sim.finish_sampling();
        assert!(sim.finish_surface_sampling().is_none());
    }

    #[test]
    fn collision_rate_matches_p_inf_in_uniform_gas() {
        // The calibration experiment: collisions per candidate ≈ P∞ when
        // the density sits at freestream.  Two small systematic excesses
        // are expected and bounded here: pair-weighted sampling of Poisson
        // cell occupancies inflates the mean by ≈ (1 + 1/n̄), and thermal
        // outflow slowly over-fills the reservoir cells.
        let mut cfg = SimConfig::small_test();
        cfg.mach = 0.0; // no drift: uniform box
        cfg.lambda = 0.5;
        cfg.n_per_cell = 40.0; // tame the fluctuation bias
        cfg.reservoir_fill = 40.0;
        let mut sim = Simulation::new(cfg);
        sim.run(50);
        let d = sim.diagnostics();
        let rate = d.collisions as f64 / d.candidates as f64;
        let p_inf = sim.freestream().p_inf();
        let ratio = rate / p_inf;
        assert!(
            (0.9..1.2).contains(&ratio),
            "acceptance {rate} vs P∞ {p_inf} (ratio {ratio})"
        );
    }

    #[test]
    fn step_body_is_supported_end_to_end() {
        let mut cfg = SimConfig::small_test();
        cfg.body = BodySpec::Step {
            x0: 8.0,
            x1: 10.0,
            h: 4.0,
        };
        let mut sim = Simulation::new(cfg);
        sim.run(40);
        let p = sim.particles();
        for i in 0..p.len() {
            if p.cell[i] < sim.reservoir_base() {
                assert!(!sim.body().contains(p.x[i], p.y[i]));
            }
        }
    }
}
