//! Sub-steps 3b and 4: partner selection and collisions.
//!
//! After the sort, each occupied cell is one contiguous segment.  Collision
//! *candidates* are even/odd neighbours ("all even numbered partners
//! within a cell are eligible for collision with their odd numbered
//! neighbour") — *even in the global sorted address*, so that with block
//! virtual-processor layout a pair always shares a physical processor for
//! VP ratios ≥ 2, the locality property behind the knee of figure 7.  Each
//! candidate pair becomes an actual collision with probability
//! `P_c = P∞·(n/n∞)` (Maxwell molecules) — a per-pair decision, which is
//! exactly what makes the phase parallel at the particle level rather than
//! the cell level.
//!
//! Collisions run one task per cell over disjoint segments
//! ([`dsmc_datapar::par_segments_mut`]); within a physical processor on the
//! CM-2 this communication was free for virtual-processor ratios ≥ 2, which
//! is the knee in the paper's figure 7.

use crate::config::RngMode;
use crate::particles::ParticleStore;
use dsmc_datapar::segments::RoCol;
use dsmc_datapar::{par_segment_runs_mut, par_segments_mut};
use dsmc_fixed::{Fx, Rounding};
use dsmc_kinetics::collision::{collide_pair, WordBits};
use dsmc_kinetics::SelectionTable;
use dsmc_rng::{Perm5, XorShift32};
use std::sync::atomic::{AtomicU64, Ordering};

/// Tallies from one selection + collision phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairStats {
    /// Candidate pairs examined.
    pub candidates: u64,
    /// Collisions performed.
    pub collisions: u64,
}

/// Local offset of a segment's first pair head: the canonical start
/// parity from the override table when one is given, the segment's own
/// start parity otherwise.
#[inline(always)]
fn parity_at(seg_parity: Option<&[u32]>, seg: usize, start: u32) -> usize {
    match seg_parity {
        Some(p) => p[seg] as usize,
        None => (start & 1) as usize,
    }
}

/// Dirty-bits word for the pair `(i, i+1)`: a mix of low-order state bits,
/// the paper's "quick but dirty random number".
#[inline(always)]
fn dirty_word(u: &[Fx], v: &[Fx], w: &[Fx], i: usize) -> u32 {
    (u[i].raw() as u32)
        ^ (v[i + 1].raw() as u32).rotate_left(9)
        ^ (w[i].raw() as u32).rotate_left(18)
        ^ (v[i].raw() as u32).rotate_left(27)
}

/// Phase 3b: mark colliding pairs.
///
/// `decisions[i] = 1` marks `i` as the head of a pair `(i, i+1)` that will
/// collide.  Returns the number of candidates examined.
#[allow(clippy::type_complexity)]
pub fn select_pairs(
    parts: &mut ParticleStore,
    bounds: &[u32],
    sel: &SelectionTable,
    rng_mode: RngMode,
    decisions: &mut Vec<u8>,
) -> u64 {
    let n = parts.len();
    decisions.clear();
    decisions.resize(n, 0);
    let candidates = AtomicU64::new(0);
    let needs_g = sel.model().needs_relative_speed();

    par_segments_mut(
        (
            parts.rng.as_mut_slice(),
            decisions.as_mut_slice(),
            RoCol(parts.cell.as_slice()),
            RoCol(parts.u.as_slice()),
            RoCol(parts.v.as_slice()),
            RoCol(parts.w.as_slice()),
        ),
        bounds,
        &|s,
          (rng, dec, cell, u, v, w): (
            &mut [XorShift32],
            &mut [u8],
            RoCol<u32>,
            RoCol<Fx>,
            RoCol<Fx>,
            RoCol<Fx>,
        )| {
            let count = dec.len();
            if count < 2 {
                return;
            }
            let c = cell.0[0];
            let mut local_candidates = 0u64;
            // Pair heads sit at even *global* sorted addresses so that
            // even/odd partners share a physical processor (block VP
            // layout) whenever the VP ratio is at least 2.
            let mut i = (bounds[s] & 1) as usize;
            while i + 1 < count {
                local_candidates += 1;
                let rand24 = match rng_mode {
                    RngMode::Explicit => rng[i].next_bits(24),
                    RngMode::DirtyBits => dirty_word(u.0, v.0, w.0, i) & 0xFF_FFFF,
                };
                let hit = if needs_g {
                    let du = u.0[i].to_f64() - u.0[i + 1].to_f64();
                    let dv = v.0[i].to_f64() - v.0[i + 1].to_f64();
                    let dw = w.0[i].to_f64() - w.0[i + 1].to_f64();
                    let g = (du * du + dv * dv + dw * dw).sqrt();
                    sel.decide_power_law(c, count as u32, g, rand24)
                } else {
                    sel.decide(c, count as u32, rand24)
                };
                if hit {
                    dec[i] = 1;
                }
                i += 2;
            }
            candidates.fetch_add(local_candidates, Ordering::Relaxed);
        },
    );
    candidates.into_inner()
}

/// Output of the fused selection + collision phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct FusedPhase {
    /// Candidate and collision tallies.
    pub stats: PairStats,
    /// Wall-clock spent in the selection sub-loops.
    pub select: std::time::Duration,
    /// Wall-clock spent in the collision sub-loops.
    pub collide: std::time::Duration,
}

/// Sub-steps 3b and 4 in one traversal (the hot-loop form): per run of
/// cells, select all partners, then collide the selected pairs while the
/// run's columns are still cache-hot.
///
/// Bit-identical to [`select_pairs`] followed by [`collide_selected`]
/// (asserted by tests): each even/odd pair touches only its own two
/// particles' state and RNG streams, so interleaving selection and
/// collision across *different* pairs cannot change any outcome.  The two
/// sub-loops are timed per run (a handful of clock reads per ~4k
/// particles), preserving the paper's select/collide timing split.
pub fn select_and_collide(
    parts: &mut ParticleStore,
    bounds: &[u32],
    sel: &SelectionTable,
    rounding: Rounding,
    rng_mode: RngMode,
    decisions: &mut Vec<u8>,
) -> FusedPhase {
    select_and_collide_with_parity(parts, bounds, sel, rounding, rng_mode, decisions, None)
}

/// [`select_and_collide`] with an explicit pairing parity per segment.
///
/// Pair heads must sit at even *canonical* sorted addresses (see
/// [`select_pairs`]).  When `parts` holds the whole population those
/// addresses are the segment bounds themselves and `seg_parity` is
/// `None`.  A shard of the population holds a canonical *subsequence*:
/// its local segment starts say nothing about the canonical address, so
/// the sharded engine passes the canonical start parity of each local
/// segment (`seg_parity[s] ∈ {0, 1}`, one entry per segment of `bounds`)
/// — with it, every pair drawn here is exactly the pair the
/// whole-population phase would draw.
#[allow(clippy::type_complexity)]
pub fn select_and_collide_with_parity(
    parts: &mut ParticleStore,
    bounds: &[u32],
    sel: &SelectionTable,
    rounding: Rounding,
    rng_mode: RngMode,
    decisions: &mut Vec<u8>,
    seg_parity: Option<&[u32]>,
) -> FusedPhase {
    let n = parts.len();
    debug_assert!(
        seg_parity.is_none_or(|p| p.len() + 1 == bounds.len()),
        "need one parity per segment"
    );
    decisions.clear();
    decisions.resize(n, 0);
    let candidates = AtomicU64::new(0);
    let collisions = AtomicU64::new(0);
    let select_ns = AtomicU64::new(0);
    let collide_ns = AtomicU64::new(0);
    let needs_g = sel.model().needs_relative_speed();

    par_segment_runs_mut(
        (
            parts.u.as_mut_slice(),
            parts.v.as_mut_slice(),
            parts.w.as_mut_slice(),
            parts.r1.as_mut_slice(),
            parts.r2.as_mut_slice(),
            parts.perm.as_mut_slice(),
            parts.rng.as_mut_slice(),
            decisions.as_mut_slice(),
            RoCol(parts.cell.as_slice()),
        ),
        bounds,
        &|first,
          brun,
          (u, v, w, r1, r2, perm, rng, dec, cell): (
            &mut [Fx],
            &mut [Fx],
            &mut [Fx],
            &mut [Fx],
            &mut [Fx],
            &mut [Perm5],
            &mut [XorShift32],
            &mut [u8],
            RoCol<u32>,
        )| {
            let base = brun[0] as usize;
            let t0 = std::time::Instant::now();

            // Selection sub-loop over every cell of the run.
            let mut local_candidates = 0u64;
            for s in 0..brun.len() - 1 {
                let lo = brun[s] as usize - base;
                let hi = brun[s + 1] as usize - base;
                if hi - lo < 2 {
                    continue;
                }
                let c = cell.0[lo];
                let count = (hi - lo) as u32;
                // Pair heads sit at even *canonical* sorted addresses (see
                // `select_pairs`); brun holds this store's offsets, which
                // are canonical only when no parity table overrides them.
                let mut i = lo + parity_at(seg_parity, first + s, brun[s]);
                while i + 1 < hi {
                    local_candidates += 1;
                    let rand24 = match rng_mode {
                        RngMode::Explicit => rng[i].next_bits(24),
                        RngMode::DirtyBits => dirty_word(u, v, w, i) & 0xFF_FFFF,
                    };
                    let hit = if needs_g {
                        let du = u[i].to_f64() - u[i + 1].to_f64();
                        let dv = v[i].to_f64() - v[i + 1].to_f64();
                        let dw = w[i].to_f64() - w[i + 1].to_f64();
                        let g = (du * du + dv * dv + dw * dw).sqrt();
                        sel.decide_power_law(c, count, g, rand24)
                    } else {
                        sel.decide(c, count, rand24)
                    };
                    if hit {
                        dec[i] = 1;
                    }
                    i += 2;
                }
            }
            let t1 = std::time::Instant::now();

            // Collision sub-loop over the same, still-hot run.
            let mut local_collisions = 0u64;
            for s in 0..brun.len() - 1 {
                let lo = brun[s] as usize - base;
                let hi = brun[s + 1] as usize - base;
                let mut i = lo + parity_at(seg_parity, first + s, brun[s]);
                while i + 1 < hi {
                    if dec[i] == 1 {
                        local_collisions += 1;
                        collide_pair_at(u, v, w, r1, r2, perm, rng, i, rounding, rng_mode);
                    }
                    i += 2;
                }
            }
            let t2 = std::time::Instant::now();

            candidates.fetch_add(local_candidates, Ordering::Relaxed);
            collisions.fetch_add(local_collisions, Ordering::Relaxed);
            select_ns.fetch_add((t1 - t0).as_nanos() as u64, Ordering::Relaxed);
            collide_ns.fetch_add((t2 - t1).as_nanos() as u64, Ordering::Relaxed);
        },
    );
    FusedPhase {
        stats: PairStats {
            candidates: candidates.into_inner(),
            collisions: collisions.into_inner(),
        },
        select: std::time::Duration::from_nanos(select_ns.into_inner()),
        collide: std::time::Duration::from_nanos(collide_ns.into_inner()),
    }
}

/// Collide the pair `(i, i+1)` in place (velocities, permutation vectors,
/// explicit rng streams), shared by both traversal forms.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn collide_pair_at(
    u: &mut [Fx],
    v: &mut [Fx],
    w: &mut [Fx],
    r1: &mut [Fx],
    r2: &mut [Fx],
    perm: &mut [Perm5],
    rng: &mut [XorShift32],
    i: usize,
    rounding: Rounding,
    rng_mode: RngMode,
) {
    let mut a = [u[i], v[i], w[i], r1[i], r2[i]];
    let mut b = [u[i + 1], v[i + 1], w[i + 1], r1[i + 1], r2[i + 1]];
    // "Of the two available permutation vectors, which one
    // gets used is inconsequential" — use the even partner's.
    let p = perm[i];
    let (ja, jb) = match rng_mode {
        RngMode::Explicit => {
            collide_pair(&mut a, &mut b, p, rounding, &mut rng[i]);
            (rng[i].next_below(5), rng[i + 1].next_below(5))
        }
        RngMode::DirtyBits => {
            let mut bits = WordBits(dirty_word(u, v, w, i).rotate_left(13));
            collide_pair(&mut a, &mut b, p, rounding, &mut bits);
            // Three dirty bits each, mapped into 0..5.
            let wa = (a[0].raw() as u32) & 7;
            let wb = (b[1].raw() as u32) & 7;
            ((wa * 5) >> 3, (wb * 5) >> 3)
        }
    };
    u[i] = a[0];
    v[i] = a[1];
    w[i] = a[2];
    r1[i] = a[3];
    r2[i] = a[4];
    u[i + 1] = b[0];
    v[i + 1] = b[1];
    w[i + 1] = b[2];
    r1[i + 1] = b[3];
    r2[i + 1] = b[4];
    // One random transposition per collision refreshes each
    // partner's permutation vector (Knuth / Aldous–Diaconis).
    perm[i] = perm[i].top_transpose(ja);
    perm[i + 1] = perm[i + 1].top_transpose(jb);
}

/// Phase 4: collide the selected pairs and refresh permutation vectors.
///
/// Returns the number of collisions performed.
#[allow(clippy::type_complexity)]
pub fn collide_selected(
    parts: &mut ParticleStore,
    bounds: &[u32],
    decisions: &[u8],
    rounding: Rounding,
    rng_mode: RngMode,
) -> u64 {
    let collisions = AtomicU64::new(0);
    par_segments_mut(
        (
            parts.u.as_mut_slice(),
            parts.v.as_mut_slice(),
            parts.w.as_mut_slice(),
            parts.r1.as_mut_slice(),
            parts.r2.as_mut_slice(),
            parts.perm.as_mut_slice(),
            parts.rng.as_mut_slice(),
            RoCol(decisions),
        ),
        bounds,
        &|s,
          (u, v, w, r1, r2, perm, rng, dec): (
            &mut [Fx],
            &mut [Fx],
            &mut [Fx],
            &mut [Fx],
            &mut [Fx],
            &mut [Perm5],
            &mut [XorShift32],
            RoCol<u8>,
        )| {
            let count = dec.0.len();
            let mut local = 0u64;
            let mut i = (bounds[s] & 1) as usize;
            while i + 1 < count {
                if dec.0[i] == 1 {
                    local += 1;
                    collide_pair_at(u, v, w, r1, r2, perm, rng, i, rounding, rng_mode);
                }
                i += 2;
            }
            collisions.fetch_add(local, Ordering::Relaxed);
        },
    );
    collisions.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmc_kinetics::MolecularModel;

    fn fx(v: f64) -> Fx {
        Fx::from_f64(v)
    }

    /// A store with `per_cell` particles in each of `cells` cells, already
    /// "sorted" (cell-contiguous), thermal velocities.
    fn sorted_store(cells: u32, per_cell: u32, seed: u32) -> (ParticleStore, Vec<u32>) {
        let mut s = ParticleStore::default();
        let mut rng = XorShift32::new(seed);
        let mut bounds = vec![0u32];
        for c in 0..cells {
            for _ in 0..per_cell {
                let vel = core::array::from_fn(|_| Fx::from_raw((rng.next_u32() as i32) >> 12));
                s.push(
                    fx(c as f64 + 0.5),
                    fx(0.5),
                    vel,
                    dsmc_rng::perm::knuth_shuffle(&mut rng),
                    XorShift32::new(rng.next_u32() | 1),
                    c,
                );
            }
            bounds.push(s.len() as u32);
        }
        (s, bounds)
    }

    #[test]
    fn near_continuum_collides_every_candidate() {
        let (mut s, bounds) = sorted_store(8, 10, 1);
        // P∞ = 1: the near-continuum limit.
        let sel = SelectionTable::uniform(8, 1.0, 1.0, MolecularModel::Maxwell, 1.0);
        let mut dec = Vec::new();
        let cand = select_pairs(&mut s, &bounds, &sel, RngMode::Explicit, &mut dec);
        assert_eq!(cand, 8 * 5, "10 particles per cell = 5 candidate pairs");
        assert_eq!(dec.iter().map(|&d| d as u64).sum::<u64>(), cand);
        let cols = collide_selected(
            &mut s,
            &bounds,
            &dec,
            Rounding::Stochastic,
            RngMode::Explicit,
        );
        assert_eq!(cols, cand, "number of collisions = half the cell count");
    }

    #[test]
    fn acceptance_tracks_probability() {
        let (mut s, bounds) = sorted_store(64, 40, 2);
        // P at n = 40 with n∞ = 40 is P∞ = 0.25.
        let sel = SelectionTable::uniform(64, 0.25, 40.0, MolecularModel::Maxwell, 1.0);
        let mut dec = Vec::new();
        let mut total_cand = 0u64;
        let mut total_col = 0u64;
        for _ in 0..50 {
            total_cand += select_pairs(&mut s, &bounds, &sel, RngMode::Explicit, &mut dec);
            total_col += collide_selected(
                &mut s,
                &bounds,
                &dec,
                Rounding::Stochastic,
                RngMode::Explicit,
            );
        }
        let rate = total_col as f64 / total_cand as f64;
        assert!((rate - 0.25).abs() < 0.01, "acceptance rate = {rate}");
    }

    #[test]
    fn odd_cell_population_leaves_last_particle_unpaired() {
        let (mut s, bounds) = sorted_store(4, 7, 3);
        let sel = SelectionTable::uniform(4, 1.0, 1.0, MolecularModel::Maxwell, 1.0);
        let mut dec = Vec::new();
        let cand = select_pairs(&mut s, &bounds, &sel, RngMode::Explicit, &mut dec);
        assert_eq!(cand, 4 * 3, "7 particles = 3 pairs, one singleton");
        // The head markers sit only on even local ranks.
        for (seg, w) in bounds.windows(2).enumerate() {
            let d = &dec[w[0] as usize..w[1] as usize];
            assert_eq!(d[6], 0, "segment {seg}: singleton must not collide");
        }
    }

    #[test]
    fn collisions_conserve_ensemble_energy_and_momentum() {
        let (mut s, bounds) = sorted_store(16, 32, 4);
        let e0 = s.total_energy_raw();
        let m0 = s.total_momentum_raw();
        let sel = SelectionTable::uniform(16, 1.0, 1.0, MolecularModel::Maxwell, 1.0);
        let mut dec = Vec::new();
        let mut collisions = 0;
        for _ in 0..20 {
            select_pairs(&mut s, &bounds, &sel, RngMode::Explicit, &mut dec);
            collisions += collide_selected(
                &mut s,
                &bounds,
                &dec,
                Rounding::Stochastic,
                RngMode::Explicit,
            );
        }
        assert!(collisions > 4000);
        let e1 = s.total_energy_raw();
        let m1 = s.total_momentum_raw();
        let rel_e = (e1 - e0) as f64 / e0 as f64;
        assert!(
            rel_e.abs() < 1e-3,
            "energy drift {rel_e} over {collisions} collisions"
        );
        for i in 0..5 {
            // ≤ 1 LSB noise per collision, unbiased: the sum stays tiny.
            assert!(
                (m1[i] - m0[i]).abs() <= collisions as i64,
                "momentum component {i} drifted by {}",
                (m1[i] - m0[i]).abs()
            );
        }
    }

    #[test]
    fn collision_refreshes_permutations() {
        let (mut s, bounds) = sorted_store(2, 16, 5);
        let perms0: Vec<Perm5> = s.perm.clone();
        let sel = SelectionTable::uniform(2, 1.0, 1.0, MolecularModel::Maxwell, 1.0);
        let mut dec = Vec::new();
        select_pairs(&mut s, &bounds, &sel, RngMode::Explicit, &mut dec);
        collide_selected(
            &mut s,
            &bounds,
            &dec,
            Rounding::Stochastic,
            RngMode::Explicit,
        );
        let changed = s.perm.iter().zip(&perms0).filter(|(a, b)| a != b).count();
        // A top-transposition with j=0 is a no-op (p = 1/5), so expect
        // ~80% of the 32 particles to change.
        assert!(changed > 16, "only {changed} permutations changed");
        assert!(s.perm.iter().all(|p| p.is_valid()));
    }

    #[test]
    fn dirty_bits_mode_collides_with_similar_statistics() {
        // Dirty-bit decisions are deterministic in the pair state, so the
        // pairing must be refreshed between rounds exactly as the engine's
        // jittered sort does; here a host-side shuffle plays that role.
        let mut host = XorShift32::new(99);
        let sel = SelectionTable::uniform(64, 0.25, 40.0, MolecularModel::Maxwell, 1.0);
        let mut dec = Vec::new();
        let mut total_cand = 0u64;
        let mut total_col = 0u64;
        let (mut s, bounds) = sorted_store(64, 40, 6);
        for _ in 0..30 {
            // Shuffle particles within each cell (order of SoA slots).
            let mut order: Vec<u32> = (0..s.len() as u32).collect();
            for w in bounds.windows(2) {
                let seg = &mut order[w[0] as usize..w[1] as usize];
                for i in (1..seg.len()).rev() {
                    let j = host.next_below((i + 1) as u32) as usize;
                    seg.swap(i, j);
                }
            }
            s.apply_order(&order);
            total_cand += select_pairs(&mut s, &bounds, &sel, RngMode::DirtyBits, &mut dec);
            total_col += collide_selected(
                &mut s,
                &bounds,
                &dec,
                Rounding::Stochastic,
                RngMode::DirtyBits,
            );
        }
        let rate = total_col as f64 / total_cand as f64;
        // Dirty bits are lower quality; accept a wider band.
        assert!(
            (rate - 0.25).abs() < 0.06,
            "dirty-bit acceptance rate = {rate}"
        );
    }

    #[test]
    fn empty_and_singleton_cells_are_safe() {
        let mut s = ParticleStore::default();
        s.push(
            fx(0.5),
            fx(0.5),
            [Fx::ZERO; 5],
            Perm5::IDENTITY,
            XorShift32::new(1),
            0,
        );
        let bounds = vec![0u32, 1];
        let sel = SelectionTable::uniform(1, 1.0, 1.0, MolecularModel::Maxwell, 1.0);
        let mut dec = Vec::new();
        let cand = select_pairs(&mut s, &bounds, &sel, RngMode::Explicit, &mut dec);
        assert_eq!(cand, 0);
        let cols = collide_selected(
            &mut s,
            &bounds,
            &dec,
            Rounding::Stochastic,
            RngMode::Explicit,
        );
        assert_eq!(cols, 0);
    }

    #[test]
    fn fused_phase_matches_reference_bit_for_bit() {
        // Same store, same seeds: the fused single-traversal phase must
        // reproduce the two-phase reference exactly — decisions, tallies,
        // velocities, permutations and rng streams.
        let sel = SelectionTable::uniform(64, 0.25, 40.0, MolecularModel::Maxwell, 1.0);
        for rng_mode in [RngMode::Explicit, RngMode::DirtyBits] {
            let (mut a, bounds) = sorted_store(64, 40, 11);
            let mut b = a.clone();
            let mut dec_a = Vec::new();
            let mut dec_b = Vec::new();
            for _ in 0..5 {
                let ca = select_pairs(&mut a, &bounds, &sel, rng_mode, &mut dec_a);
                let ka = collide_selected(&mut a, &bounds, &dec_a, Rounding::Stochastic, rng_mode);
                let out = select_and_collide(
                    &mut b,
                    &bounds,
                    &sel,
                    Rounding::Stochastic,
                    rng_mode,
                    &mut dec_b,
                );
                assert_eq!(ca, out.stats.candidates, "candidate counts differ");
                assert_eq!(ka, out.stats.collisions, "collision counts differ");
                assert_eq!(dec_a, dec_b, "decisions differ");
                assert_eq!(a.u, b.u);
                assert_eq!(a.v, b.v);
                assert_eq!(a.w, b.w);
                assert_eq!(a.r1, b.r1);
                assert_eq!(a.r2, b.r2);
                assert_eq!(a.perm, b.perm);
                assert_eq!(a.rng, b.rng);
            }
        }
    }

    #[test]
    fn power_law_selection_path_works() {
        let (mut s, bounds) = sorted_store(32, 40, 7);
        let g_inf = 0.128; // √2·c̄ for c_m = 0.08
        let sel = SelectionTable::uniform(32, 0.25, 40.0, MolecularModel::HardSphere, g_inf);
        let mut dec = Vec::new();
        let cand = select_pairs(&mut s, &bounds, &sel, RngMode::Explicit, &mut dec);
        let hits = dec.iter().map(|&d| d as u64).sum::<u64>();
        assert!(cand > 0 && hits > 0 && hits < cand);
    }
}
