//! Sub-step 1: collisionless motion.
//!
//! "Each particle's position vector is updated simply by x⃗ ← x⃗ + u⃗" — with
//! the time scale normalised by one step (paper eq. 2).  The update is
//! exact and reversible in fixed point, perfectly load balanced, and runs
//! with every (virtual) processor active.
//!
//! Reservoir particles advance inside their periodic strip so they keep
//! colliding (and relaxing) at freestream conditions; the wrap is a pure
//! lattice translation, also exact.

use crate::particles::ParticleStore;
use dsmc_fixed::Fx;
use rayon::prelude::*;

/// Wrap a coordinate into `[0, span)` by lattice translations (exact).
#[inline(always)]
pub fn wrap(mut x: Fx, span: Fx) -> Fx {
    debug_assert!(span > Fx::ZERO);
    let mut guard = 0;
    while x < Fx::ZERO && guard < 16 {
        x += span;
        guard += 1;
    }
    while x >= span && guard < 16 {
        x -= span;
        guard += 1;
    }
    debug_assert!(x >= Fx::ZERO && x < span, "runaway coordinate");
    x
}

/// Advance every particle one step.
///
/// `res_base` is the first reservoir cell index; particles with
/// `cell >= res_base` move in the periodic reservoir box of `res_w` ×
/// `res_h` cells.
pub fn advect(parts: &mut ParticleStore, res_base: u32, res_w: Fx, res_h: Fx) {
    let cells = &parts.cell;
    parts
        .x
        .par_iter_mut()
        .zip(parts.y.par_iter_mut())
        .zip(parts.u.par_iter())
        .zip(parts.v.par_iter())
        .zip(cells.par_iter())
        .for_each(|((((x, y), &u), &v), &cell)| {
            if cell < res_base {
                *x += u;
                *y += v;
            } else {
                *x = wrap(*x + u, res_w);
                *y = wrap(*y + v, res_h);
            }
        });
}

/// Reverse one motion step (used by the reversibility test: collisionless
/// motion "is strictly deterministic and reversible").
pub fn advect_reverse(parts: &mut ParticleStore, res_base: u32, res_w: Fx, res_h: Fx) {
    let cells = &parts.cell;
    parts
        .x
        .par_iter_mut()
        .zip(parts.y.par_iter_mut())
        .zip(parts.u.par_iter())
        .zip(parts.v.par_iter())
        .zip(cells.par_iter())
        .for_each(|((((x, y), &u), &v), &cell)| {
            if cell < res_base {
                *x -= u;
                *y -= v;
            } else {
                *x = wrap(*x - u, res_w);
                *y = wrap(*y - v, res_h);
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmc_rng::{Perm5, XorShift32};

    fn fx(v: f64) -> Fx {
        Fx::from_f64(v)
    }

    fn store_with(flow: &[(f64, f64, f64, f64)], res: &[(f64, f64, f64, f64)]) -> ParticleStore {
        let mut s = ParticleStore::default();
        for &(x, y, u, v) in flow {
            s.push(
                fx(x),
                fx(y),
                [fx(u), fx(v), Fx::ZERO, Fx::ZERO, Fx::ZERO],
                Perm5::IDENTITY,
                XorShift32::new(1),
                0,
            );
        }
        for &(x, y, u, v) in res {
            s.push(
                fx(x),
                fx(y),
                [fx(u), fx(v), Fx::ZERO, Fx::ZERO, Fx::ZERO],
                Perm5::IDENTITY,
                XorShift32::new(2),
                100,
            );
        }
        s
    }

    #[test]
    fn flow_particles_translate() {
        let mut s = store_with(&[(1.0, 2.0, 0.25, -0.125)], &[]);
        advect(&mut s, 100, fx(8.0), Fx::ONE);
        assert_eq!(s.x[0], fx(1.25));
        assert_eq!(s.y[0], fx(1.875));
    }

    #[test]
    fn reservoir_particles_wrap() {
        let mut s = store_with(&[], &[(7.9, 0.95, 0.25, 0.125)]);
        advect(&mut s, 100, fx(8.0), Fx::ONE);
        assert_eq!(s.x[0], fx(0.15));
        assert_eq!(s.y[0], fx(0.075));
    }

    #[test]
    fn reservoir_negative_wrap() {
        let mut s = store_with(&[], &[(0.1, 0.05, -0.25, -0.125)]);
        advect(&mut s, 100, fx(8.0), Fx::ONE);
        assert_eq!(s.x[0], fx(7.85));
        assert_eq!(s.y[0], fx(0.925));
    }

    #[test]
    fn motion_is_reversible_bit_exactly() {
        let mut rng = XorShift32::new(5);
        let mut s = ParticleStore::default();
        for i in 0..5000 {
            let res = i % 4 == 0;
            // Reservoir coordinates live in the 8×1 strip; flow in the box.
            let x = if res {
                (rng.next_f64() * 8.0).min(7.99)
            } else {
                (rng.next_f64() * 16.0).min(15.99)
            };
            let y = if res {
                rng.next_f64().min(0.99)
            } else {
                (rng.next_f64() * 12.0).min(11.99)
            };
            let u = rng.next_f64() * 0.6 - 0.3;
            let v = rng.next_f64() * 0.6 - 0.3;
            let cell = if res { 200 } else { 0 };
            s.push(
                fx(x),
                fx(y),
                [fx(u), fx(v), Fx::ZERO, Fx::ZERO, Fx::ZERO],
                Perm5::IDENTITY,
                XorShift32::new(i),
                cell,
            );
        }
        let x0 = s.x.clone();
        let y0 = s.y.clone();
        for _ in 0..50 {
            advect(&mut s, 100, fx(8.0), Fx::ONE);
        }
        for _ in 0..50 {
            advect_reverse(&mut s, 100, fx(8.0), Fx::ONE);
        }
        assert_eq!(s.x, x0, "x must return bit-exactly");
        assert_eq!(s.y, y0, "y must return bit-exactly");
    }

    #[test]
    fn wrap_helper_edge_cases() {
        let span = fx(4.0);
        assert_eq!(wrap(fx(0.0), span), fx(0.0));
        assert_eq!(wrap(fx(4.0), span), fx(0.0));
        assert_eq!(wrap(fx(-0.5), span), fx(3.5));
        assert_eq!(wrap(fx(9.0), span), fx(1.0));
        assert_eq!(wrap(fx(3.999), span), fx(3.999));
    }
}
