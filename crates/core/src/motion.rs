//! Sub-step 1: collisionless motion.
//!
//! "Each particle's position vector is updated simply by x⃗ ← x⃗ + u⃗" — with
//! the time scale normalised by one step (paper eq. 2).  The update is
//! exact and reversible in fixed point, perfectly load balanced, and runs
//! with every (virtual) processor active.
//!
//! Reservoir particles advance inside their periodic strip so they keep
//! colliding (and relaxing) at freestream conditions; the wrap is a pure
//! lattice translation, also exact.

use crate::particles::ParticleStore;
use dsmc_fixed::Fx;
use rayon::prelude::*;

/// Wrap a coordinate into `[0, span)` by lattice translations (exact).
///
/// Implemented as a fixed-point Euclidean remainder on the raw
/// representations: the result is the unique value in `[0, span)` that
/// differs from `x` by an integer multiple of `span`, for *any* input —
/// unlike the add/sub loop this replaced, there is no iteration cap and
/// no branch whose count depends on how far out of range `x` is.
#[inline(always)]
pub fn wrap(x: Fx, span: Fx) -> Fx {
    debug_assert!(span > Fx::ZERO);
    // i64 keeps the intermediate exact (raw values are i32); rem_euclid's
    // result lies in [0, span.raw) and so fits back into an i32.
    Fx::from_raw((x.raw() as i64).rem_euclid(span.raw() as i64) as i32)
}

/// Advance every particle one step.
///
/// `res_base` is the first reservoir cell index; particles with
/// `cell >= res_base` move in the periodic reservoir box of `res_w` ×
/// `res_h` cells.
pub fn advect(parts: &mut ParticleStore, res_base: u32, res_w: Fx, res_h: Fx) {
    let cells = &parts.cell;
    parts
        .x
        .par_iter_mut()
        .zip(parts.y.par_iter_mut())
        .zip(parts.u.par_iter())
        .zip(parts.v.par_iter())
        .zip(cells.par_iter())
        .for_each(|((((x, y), &u), &v), &cell)| {
            if cell < res_base {
                *x += u;
                *y += v;
            } else {
                *x = wrap(*x + u, res_w);
                *y = wrap(*y + v, res_h);
            }
        });
}

/// Reverse one motion step (used by the reversibility test: collisionless
/// motion "is strictly deterministic and reversible").
pub fn advect_reverse(parts: &mut ParticleStore, res_base: u32, res_w: Fx, res_h: Fx) {
    let cells = &parts.cell;
    parts
        .x
        .par_iter_mut()
        .zip(parts.y.par_iter_mut())
        .zip(parts.u.par_iter())
        .zip(parts.v.par_iter())
        .zip(cells.par_iter())
        .for_each(|((((x, y), &u), &v), &cell)| {
            if cell < res_base {
                *x -= u;
                *y -= v;
            } else {
                *x = wrap(*x - u, res_w);
                *y = wrap(*y - v, res_h);
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmc_rng::{Perm5, XorShift32};

    fn fx(v: f64) -> Fx {
        Fx::from_f64(v)
    }

    fn store_with(flow: &[(f64, f64, f64, f64)], res: &[(f64, f64, f64, f64)]) -> ParticleStore {
        let mut s = ParticleStore::default();
        for &(x, y, u, v) in flow {
            s.push(
                fx(x),
                fx(y),
                [fx(u), fx(v), Fx::ZERO, Fx::ZERO, Fx::ZERO],
                Perm5::IDENTITY,
                XorShift32::new(1),
                0,
            );
        }
        for &(x, y, u, v) in res {
            s.push(
                fx(x),
                fx(y),
                [fx(u), fx(v), Fx::ZERO, Fx::ZERO, Fx::ZERO],
                Perm5::IDENTITY,
                XorShift32::new(2),
                100,
            );
        }
        s
    }

    #[test]
    fn flow_particles_translate() {
        let mut s = store_with(&[(1.0, 2.0, 0.25, -0.125)], &[]);
        advect(&mut s, 100, fx(8.0), Fx::ONE);
        assert_eq!(s.x[0], fx(1.25));
        assert_eq!(s.y[0], fx(1.875));
    }

    #[test]
    fn reservoir_particles_wrap() {
        let mut s = store_with(&[], &[(7.9, 0.95, 0.25, 0.125)]);
        advect(&mut s, 100, fx(8.0), Fx::ONE);
        assert_eq!(s.x[0], fx(0.15));
        assert_eq!(s.y[0], fx(0.075));
    }

    #[test]
    fn reservoir_negative_wrap() {
        let mut s = store_with(&[], &[(0.1, 0.05, -0.25, -0.125)]);
        advect(&mut s, 100, fx(8.0), Fx::ONE);
        assert_eq!(s.x[0], fx(7.85));
        assert_eq!(s.y[0], fx(0.925));
    }

    #[test]
    fn motion_is_reversible_bit_exactly() {
        let mut rng = XorShift32::new(5);
        let mut s = ParticleStore::default();
        for i in 0..5000 {
            let res = i % 4 == 0;
            // Reservoir coordinates live in the 8×1 strip; flow in the box.
            let x = if res {
                (rng.next_f64() * 8.0).min(7.99)
            } else {
                (rng.next_f64() * 16.0).min(15.99)
            };
            let y = if res {
                rng.next_f64().min(0.99)
            } else {
                (rng.next_f64() * 12.0).min(11.99)
            };
            let u = rng.next_f64() * 0.6 - 0.3;
            let v = rng.next_f64() * 0.6 - 0.3;
            let cell = if res { 200 } else { 0 };
            s.push(
                fx(x),
                fx(y),
                [fx(u), fx(v), Fx::ZERO, Fx::ZERO, Fx::ZERO],
                Perm5::IDENTITY,
                XorShift32::new(i),
                cell,
            );
        }
        let x0 = s.x.clone();
        let y0 = s.y.clone();
        for _ in 0..50 {
            advect(&mut s, 100, fx(8.0), Fx::ONE);
        }
        for _ in 0..50 {
            advect_reverse(&mut s, 100, fx(8.0), Fx::ONE);
        }
        assert_eq!(s.x, x0, "x must return bit-exactly");
        assert_eq!(s.y, y0, "y must return bit-exactly");
    }

    #[test]
    fn wrap_helper_edge_cases() {
        let span = fx(4.0);
        assert_eq!(wrap(fx(0.0), span), fx(0.0));
        assert_eq!(wrap(fx(4.0), span), fx(0.0));
        assert_eq!(wrap(fx(-0.5), span), fx(3.5));
        assert_eq!(wrap(fx(9.0), span), fx(1.0));
        assert_eq!(wrap(fx(3.999), span), fx(3.999));
    }

    #[test]
    fn wrap_handles_far_out_of_range_inputs() {
        // The old guarded loop capped at 16 translations; the modular
        // reduction is exact arbitrarily far out (within the Q8.23 range).
        let span = fx(4.0);
        assert_eq!(wrap(fx(4.0 * 60.0 + 1.25), span), fx(1.25));
        assert_eq!(wrap(fx(-4.0 * 60.0 - 0.75), span), fx(3.25));
        assert_eq!(wrap(Fx::from_raw(i32::MIN), Fx::EPSILON), Fx::ZERO);
    }

    /// The add/sub loop the branch-free reduction replaced, kept as the
    /// executable specification for the property test below.
    fn wrap_by_loop(mut x: Fx, span: Fx) -> Fx {
        let mut guard = 0;
        while x < Fx::ZERO && guard < 16 {
            x += span;
            guard += 1;
        }
        while x >= span && guard < 16 {
            x -= span;
            guard += 1;
        }
        x
    }

    proptest::proptest! {
        #[test]
        fn prop_wrap_matches_the_translation_loop(
            // Spans cover the engine's whole range (reservoir strips are
            // 1..=64 cells; allow any positive fixed-point span) and inputs
            // stay within the loop's 16-translation reach.
            span_raw in 1i32..=(64 << 23),
            lattice in -15i64..=15,
            frac in 0i64..(1i64 << 31),
        ) {
            let span = Fx::from_raw(span_raw);
            let off = frac % span_raw as i64;
            let x_raw = lattice * span_raw as i64 + off;
            proptest::prop_assume!(x_raw >= i32::MIN as i64 && x_raw <= i32::MAX as i64);
            let x = Fx::from_raw(x_raw as i32);
            let got = wrap(x, span);
            proptest::prop_assert_eq!(got, wrap_by_loop(x, span));
            proptest::prop_assert!(got >= Fx::ZERO && got < span);
        }
    }
}
