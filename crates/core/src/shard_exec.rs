//! The per-shard phase executor: fan a closure out over the shards on a
//! pool of scoped worker threads (or run it inline on the coordinator),
//! converting worker panics into a typed [`ShardExecError`].
//!
//! This is a child module of `shard.rs` so the phase closures can borrow
//! the private `Shard` state directly.  The shape is deliberately
//! fork-join *per phase*, not a long-lived message-passing pool: the
//! sharded step already synchronizes at four coordinator barriers (plunger
//! census merge, cross-shard exchange, the global sort-budget decision,
//! and the segment-parity prefix), so a phase is exactly the span between
//! two barriers and `std::thread::scope` gives workers free borrowing of
//! the coordinator's state for that span.  Scoped threads also compose
//! with the vendored rayon pool — a worker that calls into rayon simply
//! participates in the shared global pool like any other caller.
//!
//! # Why determinism survives
//!
//! A phase closure touches only its own shard's columns/scratch/RNG
//! streams plus, read-only, the shared `base` simulation — with the single
//! exception of the field/surface accumulators, whose integer-atomic
//! `fetch_add`s are exact and order-independent.  Every quantity that
//! feeds back into the trajectory (mover counts, sort-path decisions,
//! census merges, parities) is reduced by the coordinator in shard-index
//! order from the returned per-shard values.  Scheduling therefore cannot
//! reorder anything observable; `tests/tests/shard_exec.rs` pins the
//! claim across shard × worker × thread-count matrices.

use crate::config::ExecMode;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A shard worker panicked during a phase.  The panic is caught at the
/// phase boundary and surfaced as this typed error instead of unwinding
/// through (or aborting) the coordinator, so supervisors can log the
/// failing shard and recover from a checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardExecError {
    /// Index of the shard whose worker panicked (the lowest such index
    /// when several panic in the same phase).
    pub shard: usize,
    /// The phase that was running (`"move"`, `"sort"`, `"collide"`,
    /// `"sample"`).
    pub phase: &'static str,
    /// The panic payload, when it was a string (the usual case).
    pub message: String,
}

impl std::fmt::Display for ShardExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} panicked in the {} phase: {}",
            self.shard, self.phase, self.message
        )
    }
}

impl std::error::Error for ShardExecError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The executor: the resolved execution mode for one sharded simulation.
/// Built once at engine construction from [`ExecMode`] and the shard
/// count; `run_phase` then drives every per-shard phase.
#[derive(Clone, Debug)]
pub(super) struct ShardExec {
    /// Resolved worker count (`1` = run inline on the coordinator).
    workers: usize,
    /// Whether this is the Serial executable-spec path.  Serial differs
    /// from `Threaded { workers: 1 }` only in panic behaviour: the spec
    /// path lets panics unwind normally, the threaded path always
    /// converts them to [`ShardExecError`] (so a one-worker threaded run
    /// exercises the same machinery as a wide one).
    serial: bool,
}

impl ShardExec {
    pub(super) fn new(mode: ExecMode, n_shards: usize) -> Self {
        Self {
            workers: mode.resolved_workers(n_shards),
            serial: mode == ExecMode::Serial,
        }
    }

    /// Resolved worker count.
    pub(super) fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f(shard_index, shard)` over every element of `items`, in
    /// parallel across the resolved workers, and return the per-shard
    /// results **in shard-index order** — the coordinator reduces from
    /// that vector, which is what keeps reductions deterministic.
    ///
    /// Generic over the item type (rather than hard-coded to `Shard`) so
    /// the executor's own unit tests can drive it without building a
    /// simulation.
    pub(super) fn run_phase<I, T, F>(
        &self,
        items: &mut [I],
        phase: &'static str,
        f: F,
    ) -> Result<Vec<T>, ShardExecError>
    where
        I: Send,
        T: Send,
        F: Fn(usize, &mut I) -> T + Sync,
    {
        if self.serial {
            // The executable spec: plain loop, panics unwind normally.
            return Ok(items
                .iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect());
        }
        let n = items.len();
        let w = self.workers.min(n.max(1));
        let mut slots: Vec<Option<Result<T, String>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        // Contiguous chunks, one per worker; the coordinator takes the
        // first chunk itself so a one-worker threaded run spawns nothing.
        let chunk = n.div_ceil(w.max(1)).max(1);
        std::thread::scope(|scope| {
            let mut item_chunks = items.chunks_mut(chunk);
            let mut slot_chunks = slots.chunks_mut(chunk);
            let first_items = item_chunks.next();
            let first_slots = slot_chunks.next();
            for (k, (ic, sc)) in item_chunks.zip(slot_chunks).enumerate() {
                let base = (k + 1) * chunk;
                let f = &f;
                scope.spawn(move || {
                    for (off, (item, slot)) in ic.iter_mut().zip(sc.iter_mut()).enumerate() {
                        *slot = Some(
                            catch_unwind(AssertUnwindSafe(|| f(base + off, item)))
                                .map_err(panic_message),
                        );
                    }
                });
            }
            if let (Some(ic), Some(sc)) = (first_items, first_slots) {
                for (off, (item, slot)) in ic.iter_mut().zip(sc.iter_mut()).enumerate() {
                    *slot = Some(
                        catch_unwind(AssertUnwindSafe(|| f(off, item))).map_err(panic_message),
                    );
                }
            }
        });
        let mut out = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Ok(t)) => out.push(t),
                Some(Err(message)) => {
                    return Err(ShardExecError {
                        shard: i,
                        phase,
                        message,
                    })
                }
                None => {
                    return Err(ShardExecError {
                        shard: i,
                        phase,
                        message: "worker produced no result".to_string(),
                    })
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modes() -> Vec<ExecMode> {
        vec![
            ExecMode::Serial,
            ExecMode::Threaded { workers: 1 },
            ExecMode::Threaded { workers: 2 },
            ExecMode::Threaded { workers: 4 },
            ExecMode::Threaded { workers: 0 },
        ]
    }

    #[test]
    fn results_come_back_in_shard_index_order_for_every_width() {
        for mode in modes() {
            for n in [0usize, 1, 2, 3, 4, 7] {
                let exec = ShardExec::new(mode, n.max(1));
                let mut items: Vec<u64> = (0..n as u64).collect();
                let out = exec
                    .run_phase(&mut items, "move", |i, item| {
                        *item += 100;
                        (i, *item)
                    })
                    .expect("no panics scheduled");
                let want: Vec<(usize, u64)> = (0..n).map(|i| (i, i as u64 + 100)).collect();
                assert_eq!(out, want, "{mode:?} n={n}");
            }
        }
    }

    #[test]
    fn a_worker_panic_becomes_a_typed_error_carrying_the_shard_id() {
        // Satellite contract: the panic must not abort or unwind through —
        // it surfaces as ShardExecError { shard, phase, .. }.
        for workers in [1usize, 2, 4] {
            let exec = ShardExec::new(ExecMode::Threaded { workers }, 4);
            let mut items = vec![0u8; 4];
            let err = exec
                .run_phase(&mut items, "collide", |i, _item| {
                    if i == 2 {
                        panic!("injected shard failure {i}");
                    }
                })
                .expect_err("shard 2 must fail");
            assert_eq!(err.shard, 2, "workers={workers}");
            assert_eq!(err.phase, "collide");
            assert!(
                err.message.contains("injected shard failure 2"),
                "message: {}",
                err.message
            );
        }
    }

    #[test]
    fn the_lowest_panicking_shard_wins_when_several_fail() {
        let exec = ShardExec::new(ExecMode::Threaded { workers: 4 }, 4);
        let mut items = vec![0u8; 4];
        let err = exec
            .run_phase(&mut items, "sort", |i, _item| {
                if i >= 1 {
                    panic!("boom {i}");
                }
            })
            .expect_err("three shards fail");
        assert_eq!(err.shard, 1);
    }

    #[test]
    fn serial_mode_lets_panics_unwind_as_the_executable_spec() {
        let exec = ShardExec::new(ExecMode::Serial, 2);
        let mut items = vec![0u8; 2];
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            let _ = exec.run_phase(&mut items, "move", |i, _item| {
                if i == 1 {
                    panic!("spec path panics plainly");
                }
            });
        }));
        assert!(unwound.is_err(), "Serial must not catch worker panics");
    }

    #[test]
    fn worker_resolution_clamps_to_the_shard_count() {
        assert_eq!(ShardExec::new(ExecMode::Serial, 8).workers(), 1);
        assert_eq!(
            ShardExec::new(ExecMode::Threaded { workers: 16 }, 4).workers(),
            4
        );
        assert_eq!(
            ShardExec::new(ExecMode::Threaded { workers: 2 }, 4).workers(),
            2
        );
        let auto = ShardExec::new(ExecMode::Threaded { workers: 0 }, 4).workers();
        assert!((1..=4).contains(&auto));
    }
}
