//! Physics sentinels: cheap per-window watchdogs for unattended runs.
//!
//! A long batch run can go wrong in ways that never panic — a flipped
//! bit in a velocity column, a stale cell index after a botched resume, a
//! slow energy leak from a future kernel bug.  The sentinel re-purposes
//! ledgers the engine already keeps (the [`Diagnostics`] conservation
//! counters, the segment bounds, the particle columns themselves) into
//! five invariant checks, each O(1) or one O(N) pass, designed to run
//! every few dozen steps without perturbing the simulation:
//!
//! 1. **Particle-count invariance** — the engine recycles every exited
//!    particle, so the total population is *exactly* constant.  Any
//!    drift is structural corruption, not physics.
//! 2. **Momentum budget** — the conserved components (`w`, `r1`, `r2`)
//!    drift only by fixed-point LSB random walks; the drift since arming
//!    must stay inside a multiple of the analytic walk budget
//!    `4·√collisions + 6·σ_raw·√exited + 1000` (the same bound the
//!    golden metric `momentum_drift_budget_frac` pins).
//! 3. **Energy pin** — mean energy per particle stays within a band of
//!    its armed baseline.  The band is wide (default 0.3–3×) because a
//!    cold start legitimately heats ~2× as the bow shock forms; it still
//!    catches column corruption in small populations and any runaway
//!    energy leak.
//! 4. **Velocity halo** — no particle may move faster than a multiple of
//!    the config-derived classifier halo `(|u∞| + 6σ·t_scale).max(1)`.
//!    Checked two ways: the engine's monotone observed-max (catches a
//!    transient spike even if the particle has since exited) and a fresh
//!    column scan (catches corruption injected while the engine wasn't
//!    looking).  The bound is config-derived, not the engine's tracked
//!    max, so one legitimate historical outlier cannot wedge the
//!    sentinel into a permanent false positive.
//! 5. **Segment consistency** — the sort invariant the whole
//!    gather/scatter machinery rests on: bounds start at 0, strictly
//!    increase, end at N; segments are uniform in cell and strictly
//!    increasing across segments; and every cached `cell[i]` equals the
//!    cell *derived from the particle's position* (flow cells via the
//!    tunnel's row-major indexing, reservoir cells via [`ResLayout`]).
//!    Deriving from position is what catches a corrupted singleton
//!    segment that within-segment equality would miss.
//!
//! All checks are read-only and consume no RNG draws: a supervised run
//! and an unsupervised run share bit-identical trajectories, which is
//! what lets the supervisor promise recovery to the *same* `state_hash`.

use crate::config::{ResLayout, WallModel};
use crate::diag::Diagnostics;
use crate::engine::Simulation;
use dsmc_fixed::Fx;

/// Tunable trip thresholds; [`SentinelThresholds::default`] matches the
/// analysis above and holds for every registry scenario (the healthy-run
/// proptests pin that).
#[derive(Clone, Copy, Debug)]
pub struct SentinelThresholds {
    /// Trip when momentum drift exceeds this multiple of the LSB
    /// random-walk budget (the golden tolerance is 1.0; default 1.5
    /// leaves slack for budget-fraction noise between golden samplings).
    pub momentum_budget_frac: f64,
    /// Allowed band of energy-per-particle relative to the armed
    /// baseline, as `(low, high)` multipliers.
    pub energy_band: (f64, f64),
    /// Trip when any per-component speed exceeds this multiple of the
    /// config-derived classifier halo.
    pub halo_multiple: f64,
}

impl Default for SentinelThresholds {
    fn default() -> Self {
        Self {
            momentum_budget_frac: 1.5,
            energy_band: (0.3, 3.0),
            halo_multiple: 3.0,
        }
    }
}

/// A tripped sentinel: which invariant broke and by how much.
#[derive(Clone, Debug, PartialEq)]
pub enum SentinelError {
    /// The exactly-conserved total particle count changed.
    ParticleCountChanged {
        /// Population when the sentinel was armed.
        expected: usize,
        /// Population now.
        found: usize,
    },
    /// A conserved momentum component drifted past its random-walk
    /// budget.
    MomentumBudgetBlown {
        /// Component index into `Diagnostics::momentum_raw` (2 = w,
        /// 3 = r1, 4 = r2).
        component: usize,
        /// Absolute drift since arming, raw fixed-point units.
        drift_raw: f64,
        /// The analytic walk budget at the current collision/exit
        /// counts, raw units.
        budget_raw: f64,
        /// `drift / budget` (tripped because this exceeded the
        /// threshold).
        frac: f64,
    },
    /// Mean energy per particle left its allowed band.
    EnergyPinBroken {
        /// Energy per particle now (squared cells-per-step units).
        per_particle: f64,
        /// Energy per particle when the sentinel was armed.
        baseline: f64,
        /// Allowed `(low, high)` multipliers on the baseline.
        band: (f64, f64),
    },
    /// A per-component speed exceeded the halo bound.
    VelocityHaloExceeded {
        /// Largest |u| or |v| seen (raw units) — from the fresh column
        /// scan or the engine's monotone observed-max, whichever.
        max_raw: u32,
        /// The config-derived bound (raw units).
        bound_raw: u32,
    },
    /// The segment/bounds/cell sort invariant is broken.
    SegmentsBroken {
        /// What specifically failed.
        what: &'static str,
        /// Offending index (particle or segment, per `what`).
        index: usize,
    },
}

impl std::fmt::Display for SentinelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ParticleCountChanged { expected, found } => write!(
                f,
                "particle count changed: armed with {expected}, now {found}"
            ),
            Self::MomentumBudgetBlown {
                component,
                drift_raw,
                budget_raw,
                frac,
            } => write!(
                f,
                "momentum component {component} drifted {drift_raw:.0} raw \
                 against a budget of {budget_raw:.0} ({frac:.2}x)"
            ),
            Self::EnergyPinBroken {
                per_particle,
                baseline,
                band,
            } => write!(
                f,
                "energy per particle {per_particle:.4} left band \
                 [{:.4}, {:.4}] around baseline {baseline:.4}",
                band.0 * baseline,
                band.1 * baseline
            ),
            Self::VelocityHaloExceeded { max_raw, bound_raw } => write!(
                f,
                "per-component speed {max_raw} raw exceeds halo bound {bound_raw} raw"
            ),
            Self::SegmentsBroken { what, index } => {
                write!(f, "segment invariant broken at {index}: {what}")
            }
        }
    }
}

impl std::error::Error for SentinelError {}

/// Armed watchdog holding the baselines every later [`Sentinel::check`]
/// compares against.
///
/// Arm it once per run — on the cold-start simulation or right after a
/// resume; because trajectories are deterministic, the same baselines
/// remain valid across checkpoint recoveries of the same run.
#[derive(Clone, Debug)]
pub struct Sentinel {
    n0: usize,
    momentum0: [i64; 5],
    energy0_per_particle: f64,
    halo_bound_raw: u32,
    thresholds: SentinelThresholds,
}

impl Sentinel {
    /// Arm with [`SentinelThresholds::default`].
    pub fn arm(sim: &Simulation) -> Self {
        Self::arm_with(sim, SentinelThresholds::default())
    }

    /// Arm against `sim`'s current state with explicit thresholds.
    pub fn arm_with(sim: &Simulation, thresholds: SentinelThresholds) -> Self {
        let d = sim.diagnostics();
        let n = sim.n_particles();
        assert!(n > 0, "cannot arm a sentinel on an empty simulation");
        let one = Fx::ONE_RAW as f64;
        let energy0_per_particle = d.energy_raw as f64 / n as f64 / (one * one);
        let fs = sim.freestream();
        let t_scale = match sim.config().walls {
            WallModel::Specular => 1.0,
            WallModel::Diffuse { t_wall } => t_wall.sqrt().max(1.0),
        };
        let halo0 = (fs.u_inf().abs() + 6.0 * fs.sigma() * t_scale).max(1.0);
        let halo_bound_raw = (halo0 * thresholds.halo_multiple * one).min(u32::MAX as f64) as u32;
        Self {
            n0: n,
            momentum0: d.momentum_raw,
            energy0_per_particle,
            halo_bound_raw,
            thresholds,
        }
    }

    /// The velocity bound (raw units) checks use.
    pub fn halo_bound_raw(&self) -> u32 {
        self.halo_bound_raw
    }

    /// Run all five checks against `sim`; the first broken invariant is
    /// the error.  Read-only, no RNG draws, one O(N) pass over the
    /// particle columns.
    pub fn check(&self, sim: &Simulation) -> Result<(), SentinelError> {
        let d = sim.diagnostics();
        self.check_count(sim)?;
        self.check_momentum(sim, &d)?;
        self.check_energy(sim, &d)?;
        self.check_halo(sim)?;
        self.check_segments(sim)?;
        Ok(())
    }

    fn check_count(&self, sim: &Simulation) -> Result<(), SentinelError> {
        let found = sim.n_particles();
        if found != self.n0 {
            return Err(SentinelError::ParticleCountChanged {
                expected: self.n0,
                found,
            });
        }
        Ok(())
    }

    fn check_momentum(&self, sim: &Simulation, d: &Diagnostics) -> Result<(), SentinelError> {
        // Same analytic budget the golden `momentum_drift_budget_frac`
        // metric uses, at the current cumulative collision/exit counts.
        let one = Fx::ONE_RAW as f64;
        let sigma_raw = sim.freestream().sigma() * one;
        let collision_walk = 4.0 * (d.collisions as f64).sqrt();
        let exit_walk = 6.0 * sigma_raw * (d.exited.max(1) as f64).sqrt();
        let budget = collision_walk + exit_walk + 1000.0;
        for k in 2..5 {
            let drift = (d.momentum_raw[k] - self.momentum0[k]).abs() as f64;
            let frac = drift / budget;
            if frac > self.thresholds.momentum_budget_frac {
                return Err(SentinelError::MomentumBudgetBlown {
                    component: k,
                    drift_raw: drift,
                    budget_raw: budget,
                    frac,
                });
            }
        }
        Ok(())
    }

    fn check_energy(&self, sim: &Simulation, d: &Diagnostics) -> Result<(), SentinelError> {
        let one = Fx::ONE_RAW as f64;
        let n = sim.n_particles().max(1);
        let per_particle = d.energy_raw as f64 / n as f64 / (one * one);
        let (lo, hi) = self.thresholds.energy_band;
        let baseline = self.energy0_per_particle;
        if per_particle < lo * baseline || per_particle > hi * baseline {
            return Err(SentinelError::EnergyPinBroken {
                per_particle,
                baseline,
                band: (lo, hi),
            });
        }
        Ok(())
    }

    fn check_halo(&self, sim: &Simulation) -> Result<(), SentinelError> {
        // Monotone engine-tracked max first: catches a spike whose
        // particle has since exited.
        let tracked = sim.max_observed_speed_raw();
        if tracked > self.halo_bound_raw {
            return Err(SentinelError::VelocityHaloExceeded {
                max_raw: tracked,
                bound_raw: self.halo_bound_raw,
            });
        }
        // Fresh column scan: catches corruption the engine has not
        // stepped over yet (only u/v — the advecting components the
        // tracked max also watches; w corruption shows in the ledgers).
        let p = sim.particles();
        let mut max_raw: u32 = 0;
        for i in 0..p.len() {
            let u = p.u[i].raw().unsigned_abs();
            let v = p.v[i].raw().unsigned_abs();
            max_raw = max_raw.max(u).max(v);
        }
        if max_raw > self.halo_bound_raw {
            return Err(SentinelError::VelocityHaloExceeded {
                max_raw,
                bound_raw: self.halo_bound_raw,
            });
        }
        Ok(())
    }

    fn check_segments(&self, sim: &Simulation) -> Result<(), SentinelError> {
        let bounds = sim.segment_bounds();
        let p = sim.particles();
        let n = p.len();
        let broken = |what, index| Err(SentinelError::SegmentsBroken { what, index });
        if bounds.is_empty() || bounds[0] != 0 {
            return broken("bounds must start at 0", 0);
        }
        if *bounds.last().unwrap() as usize != n {
            return broken("bounds must end at the particle count", bounds.len() - 1);
        }
        let total = sim.total_cells();
        let mut prev_cell: Option<u32> = None;
        for s in 0..bounds.len() - 1 {
            let (lo, hi) = (bounds[s], bounds[s + 1]);
            if lo >= hi {
                return broken("segment bounds must strictly increase", s);
            }
            let cell = p.cell[lo as usize];
            if cell >= total {
                return broken("segment cell out of range", s);
            }
            if let Some(prev) = prev_cell {
                if cell <= prev {
                    return broken("segment cells must strictly increase", s);
                }
            }
            prev_cell = Some(cell);
            for i in lo..hi {
                if p.cell[i as usize] != cell {
                    return broken("segment is not uniform in cell", i as usize);
                }
            }
        }
        // Every cached cell must equal the cell derived from position —
        // this is the check a corrupted singleton segment cannot evade.
        let cfg = sim.config();
        let res = ResLayout::for_cells(cfg.reservoir_cells);
        let res_base = sim.reservoir_base();
        for i in 0..n {
            let cached = p.cell[i];
            let (ix, iy) = (p.x[i].floor_int(), p.y[i].floor_int());
            if cached < res_base {
                // Flow particle: tunnel-frame row-major index.
                if ix < 0 || iy < 0 || ix as u32 >= cfg.tunnel_w || iy as u32 >= cfg.tunnel_h {
                    return broken("flow particle position outside tunnel", i);
                }
                if cached != iy as u32 * cfg.tunnel_w + ix as u32 {
                    return broken("cached cell disagrees with position", i);
                }
            } else {
                // Reservoir particle: box-frame index offset by the base.
                if ix < 0 || iy < 0 || ix as u32 >= res.w || iy as u32 >= res.h {
                    return broken("reservoir particle position outside box", i);
                }
                if cached != res_base + iy as u32 * res.w + ix as u32 {
                    return broken("cached cell disagrees with position", i);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::FaultTarget;

    fn small_sim(steps: u64) -> Simulation {
        let mut sim = Simulation::new(SimConfig::small_test());
        for _ in 0..steps {
            sim.step();
        }
        sim
    }

    #[test]
    fn healthy_run_never_trips() {
        let mut sim = small_sim(0);
        let sentinel = Sentinel::arm(&sim);
        for _ in 0..5 {
            for _ in 0..10 {
                sim.step();
            }
            sentinel.check(&sim).expect("healthy run must pass");
        }
    }

    #[test]
    fn w_column_corruption_trips_a_ledger_check() {
        let mut sim = small_sim(10);
        let sentinel = Sentinel::arm(&sim);
        sim.inject_fault(FaultTarget::OutOfPlaneVelocity, 7);
        let err = sentinel.check(&sim).expect_err("must trip");
        assert!(
            matches!(
                err,
                SentinelError::MomentumBudgetBlown { .. } | SentinelError::EnergyPinBroken { .. }
            ),
            "unexpected trip: {err}"
        );
        // And it persists: w does not advect, so the ledgers stay hot.
        for _ in 0..5 {
            sim.step();
        }
        sentinel.check(&sim).expect_err("still tripped after steps");
    }

    #[test]
    fn u_spike_trips_the_halo_scan_then_the_tracked_max() {
        let mut sim = small_sim(10);
        let sentinel = Sentinel::arm(&sim);
        sim.inject_fault(FaultTarget::StreamwiseVelocity, 3);
        match sentinel.check(&sim).expect_err("must trip") {
            SentinelError::VelocityHaloExceeded { max_raw, bound_raw } => {
                assert!(max_raw > bound_raw);
            }
            other => panic!("unexpected trip: {other}"),
        }
        // Even after the particle advects (and possibly exits), the
        // engine's monotone observed-max keeps the evidence.
        for _ in 0..5 {
            sim.step();
        }
        match sentinel.check(&sim).expect_err("tracked max remembers") {
            SentinelError::VelocityHaloExceeded { .. } => {}
            other => panic!("unexpected trip: {other}"),
        }
    }

    #[test]
    fn cell_rotation_trips_segment_consistency() {
        let mut sim = small_sim(10);
        let sentinel = Sentinel::arm(&sim);
        sim.inject_fault(FaultTarget::CellIndex, 11);
        match sentinel.check(&sim).expect_err("must trip") {
            SentinelError::SegmentsBroken { .. } => {}
            other => panic!("unexpected trip: {other}"),
        }
    }

    #[test]
    fn sentinel_checks_consume_no_rng_and_leave_state_untouched() {
        let mut a = small_sim(20);
        let mut b = small_sim(20);
        let sentinel = Sentinel::arm(&a);
        for _ in 0..3 {
            for _ in 0..7 {
                a.step();
                b.step();
            }
            sentinel.check(&a).unwrap();
        }
        assert_eq!(a.state_hash(), b.state_hash());
    }
}
