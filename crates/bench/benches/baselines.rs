//! Scheme and backend comparisons: the engine vs the serial comparator
//! (the paper's CM-2 vs Cray-2 axis) and the three selection schemes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dsmc_baselines::nanbu::pairwise_step;
use dsmc_baselines::{BirdBox, NanbuBox, SerialSim, UniformBox};
use dsmc_engine::{SimConfig, Simulation};
use dsmc_fixed::Rounding;

fn workload() -> SimConfig {
    let mut cfg = SimConfig::paper(0.0);
    cfg.n_per_cell = 15.0;
    cfg.reservoir_fill = 21.0;
    cfg
}

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend_step");
    g.sample_size(10);
    let mut par = Simulation::new(workload());
    par.run(20);
    g.throughput(Throughput::Elements(par.n_particles() as u64));
    g.bench_function("parallel_engine", |b| b.iter(|| par.step()));
    let mut ser = SerialSim::new(workload());
    ser.run(20);
    g.throughput(Throughput::Elements(ser.n_particles() as u64));
    g.bench_function("serial_comparator", |b| b.iter(|| ser.step()));
    g.finish();
}

fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("selection_scheme_step");
    g.sample_size(10);
    let (cells, per_cell, sigma) = (128u32, 40u32, 0.05);
    let n = (cells * per_cell) as u64;
    g.throughput(Throughput::Elements(n));

    let mut mb = UniformBox::rectangular(cells, per_cell, sigma, 1);
    g.bench_function("pairwise_mb", |b| {
        b.iter(|| pairwise_step(&mut mb, 0.5, per_cell as f64, Rounding::Stochastic));
    });

    let mut bird = BirdBox::new(
        UniformBox::rectangular(cells, per_cell, sigma, 2),
        0.5,
        per_cell as f64,
    );
    g.bench_function("bird_time_counter", |b| b.iter(|| bird.step()));

    let mut nanbu = NanbuBox::new(
        UniformBox::rectangular(cells, per_cell, sigma, 3),
        0.5,
        per_cell as f64,
    );
    g.bench_function("nanbu_ploss", |b| b.iter(|| nanbu.step()));
    g.finish();
}

criterion_group!(benches, bench_backends, bench_schemes);
criterion_main!(benches);
