//! Full-step throughput on the paper's wind-tunnel workload (the
//! wall-clock companion of figure 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsmc_engine::{SimConfig, Simulation};

fn sim_with_total(total: usize, lambda: f64) -> Simulation {
    let mut cfg = SimConfig::paper(lambda);
    let free_cells = 6092.0 + 640.0;
    cfg.n_per_cell = (total as f64 / free_cells).max(1.0);
    cfg.reservoir_fill = cfg.n_per_cell * 1.4;
    let mut sim = Simulation::new(cfg);
    sim.run(30); // settle past the initial transient
    sim
}

fn bench_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("wedge_step");
    g.sample_size(10);
    for &n in &[65_536usize, 262_144] {
        let mut sim = sim_with_total(n, 0.0);
        g.throughput(Throughput::Elements(sim.n_particles() as u64));
        g.bench_with_input(BenchmarkId::new("near_continuum", n), &n, |b, _| {
            b.iter(|| sim.step());
        });
    }
    let mut sim = sim_with_total(262_144, 0.5);
    g.throughput(Throughput::Elements(sim.n_particles() as u64));
    g.bench_function(BenchmarkId::new("rarefied", 262_144usize), |b| {
        b.iter(|| sim.step());
    });
    g.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
