//! Criterion benches for the data-parallel substrate: the CM-2 primitive
//! vocabulary at engine-realistic sizes (the sort is 27% of the paper's
//! step; here we pin its absolute throughput and the scans around it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsmc_datapar::{
    apply_perm, pack_indices, scan_add_inclusive_u32, segmented_broadcast_count, sort_perm_by_key,
};

fn keys_like_engine(n: usize, cells: u32, jitter_bits: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| {
            let c = i.wrapping_mul(2654435761) % cells;
            let j = i.wrapping_mul(0x9E3779B9) & ((1 << jitter_bits) - 1);
            (c << jitter_bits) | j
        })
        .collect()
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort_perm_by_key");
    g.sample_size(10);
    for &n in &[65_536usize, 262_144, 524_288] {
        let keys = keys_like_engine(n, 6872, 8);
        let bits = 22;
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &keys, |b, keys| {
            b.iter(|| sort_perm_by_key(keys, bits));
        });
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_add_inclusive");
    g.sample_size(10);
    for &n in &[262_144usize, 1_048_576] {
        let xs: Vec<u32> = (0..n as u32).map(|i| i % 7).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &xs, |b, xs| {
            b.iter(|| scan_add_inclusive_u32(xs));
        });
    }
    g.finish();
}

fn bench_segments(c: &mut Criterion) {
    let mut g = c.benchmark_group("segmented_broadcast_count");
    g.sample_size(10);
    let n = 262_144usize;
    let mut keys: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761) % 6272)
        .collect();
    keys.sort_unstable();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("262144", |b| b.iter(|| segmented_broadcast_count(&keys)));
    g.finish();
}

fn bench_gather(c: &mut Criterion) {
    let mut g = c.benchmark_group("apply_perm");
    g.sample_size(10);
    let n = 262_144usize;
    let keys = keys_like_engine(n, 6872, 8);
    let perm = sort_perm_by_key(&keys, 22);
    let src: Vec<u64> = (0..n as u64).collect();
    let mut out = Vec::new();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("262144_u64", |b| {
        b.iter(|| apply_perm(&src, &perm, &mut out));
    });
    g.finish();
}

fn bench_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_indices");
    g.sample_size(10);
    let n = 262_144usize;
    let mask: Vec<bool> = (0..n as u32)
        .map(|i| i.wrapping_mul(0x9E3779B9) & 63 == 0)
        .collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("262144_sparse", |b| b.iter(|| pack_indices(&mask)));
    g.finish();
}

criterion_group!(
    benches,
    bench_sort,
    bench_scan,
    bench_segments,
    bench_gather,
    bench_pack
);
criterion_main!(benches);
