//! Micro-benchmarks of the per-pair hot path: the 5-vector collision
//! kernel (39% of the paper's step) and the selection test (20%).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dsmc_fixed::{Fx, Rounding};
use dsmc_kinetics::collision::collide_pair;
use dsmc_kinetics::{MolecularModel, SelectionTable};
use dsmc_rng::{perm::knuth_shuffle, XorShift32};

fn bench_collide(c: &mut Criterion) {
    let mut g = c.benchmark_group("collide_pair");
    g.throughput(Throughput::Elements(1));
    let mut rng = XorShift32::new(7);
    let perm = knuth_shuffle(&mut rng);
    let mut a = [Fx::from_f64(0.1); 5];
    let mut b = [Fx::from_f64(-0.07); 5];
    g.bench_function("stochastic", |bch| {
        bch.iter(|| {
            collide_pair(
                black_box(&mut a),
                black_box(&mut b),
                perm,
                Rounding::Stochastic,
                &mut rng,
            )
        });
    });
    g.bench_function("truncate", |bch| {
        bch.iter(|| {
            collide_pair(
                black_box(&mut a),
                black_box(&mut b),
                perm,
                Rounding::Truncate,
                &mut rng,
            )
        });
    });
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("selection_decide");
    g.throughput(Throughput::Elements(1));
    let table = SelectionTable::uniform(6872, 0.2, 75.0, MolecularModel::Maxwell, 0.128);
    let mut rng = XorShift32::new(3);
    g.bench_function("maxwell", |bch| {
        bch.iter(|| table.decide(black_box(42), black_box(75), rng.next_bits(24)));
    });
    let hs = SelectionTable::uniform(6872, 0.2, 75.0, MolecularModel::HardSphere, 0.128);
    g.bench_function("hard_sphere", |bch| {
        bch.iter(|| hs.decide_power_law(black_box(42), black_box(75), 0.1, rng.next_bits(24)));
    });
    g.finish();
}

fn bench_perm(c: &mut Criterion) {
    let mut g = c.benchmark_group("perm5");
    g.throughput(Throughput::Elements(1));
    let mut rng = XorShift32::new(5);
    let p = knuth_shuffle(&mut rng);
    g.bench_function("top_transpose", |b| {
        b.iter(|| black_box(p).top_transpose(rng.next_below(5)));
    });
    let vals = [1i32, 2, 3, 4, 5];
    g.bench_function("apply", |b| {
        b.iter(|| black_box(p).apply(black_box(vals)));
    });
    g.finish();
}

criterion_group!(benches, bench_collide, bench_selection, bench_perm);
criterion_main!(benches);
