//! ABL-4: explicit per-particle streams vs the paper's "dirty bits".
//!
//! "An additional advantage of this implementation is the availability of
//! a quick but dirty random number in the low order bits of a physical
//! state quantity."  We run the same wedge study in both randomness modes
//! and compare the extracted physics and the runtime — the paper's bet is
//! that the dirty bits are good enough for these low-impact decisions.
//!
//! `cargo run --release -p dsmc-bench --bin ablation_rng`

use dsmc_bench::{report, write_artifact, RunScale};
use dsmc_engine::{RngMode, SimConfig, Simulation};
use dsmc_flowfield::shock::wedge_metrics;

fn run(mode: RngMode, scale: RunScale) -> (Option<dsmc_flowfield::ShockMetrics>, f64) {
    let mut cfg = SimConfig::paper(0.0);
    cfg.n_per_cell = (75.0 * scale.density).max(4.0);
    cfg.reservoir_fill = cfg.n_per_cell * 1.4;
    cfg.rng_mode = mode;
    let t0 = std::time::Instant::now();
    let mut sim = Simulation::new(cfg);
    sim.run((1200.0 * scale.steps) as usize);
    sim.begin_sampling();
    sim.run((2000.0 * scale.steps) as usize);
    let f = sim.finish_sampling();
    (
        wedge_metrics(&f, 20.0, 25.0, 30.0, 4.0, 1.4),
        t0.elapsed().as_secs_f64(),
    )
}

fn main() {
    let scale = RunScale::from_args();
    println!("== ABL-4: explicit per-particle RNG vs dirty low-order bits ==");
    let (m_exp, t_exp) = run(RngMode::Explicit, scale);
    let (m_dirty, t_dirty) = run(RngMode::DirtyBits, scale);
    let (m_exp, m_dirty) = (m_exp.expect("fit"), m_dirty.expect("fit"));

    report(
        "shock angle (deg)",
        "45",
        &format!(
            "explicit {:.1} | dirty {:.1}",
            m_exp.shock_angle_deg, m_dirty.shock_angle_deg
        ),
    );
    report(
        "density ratio",
        "3.7",
        &format!(
            "explicit {:.2} | dirty {:.2}",
            m_exp.density_ratio, m_dirty.density_ratio
        ),
    );
    report(
        "shock thickness (cells)",
        "3",
        &format!(
            "explicit {:.1} | dirty {:.1}",
            m_exp.thickness_rise, m_dirty.thickness_rise
        ),
    );
    report(
        "wall time (s)",
        "n/a",
        &format!("explicit {t_exp:.1} | dirty {t_dirty:.1}"),
    );
    let csv = format!(
        "mode,angle,ratio,thickness,seconds\nexplicit,{:.2},{:.3},{:.2},{:.1}\n\
         dirty,{:.2},{:.3},{:.2},{:.1}\n",
        m_exp.shock_angle_deg,
        m_exp.density_ratio,
        m_exp.thickness_rise,
        t_exp,
        m_dirty.shock_angle_deg,
        m_dirty.density_ratio,
        m_dirty.thickness_rise,
        t_dirty
    );
    write_artifact("ablation_rng.csv", csv.as_bytes());
    println!(
        "\nthe macroscopic fields agree to within sampling noise — the paper's\n\
         frugal randomness is indeed sufficient for these low-impact decisions."
    );
    assert!((m_exp.shock_angle_deg - m_dirty.shock_angle_deg).abs() < 3.0);
    assert!((m_exp.density_ratio - m_dirty.density_ratio).abs() < 0.4);
}
