//! FIG4 + FIG5 + FIG6: rarefied Mach-4 flow over the 30° wedge.
//!
//! Same geometry as figures 1–3 but with the freestream mean free path set
//! to 0.5 cell widths (Kn = 0.02): the shock thickens to ≈5 cells and the
//! wake shock is washed out by the rarefaction.
//!
//! `cargo run --release -p dsmc-bench --bin fig4_rarefied [--full]`

use dsmc_bench::{
    emit_density_artifacts, metrics_json, report, report_shock_metrics, run_wedge, write_artifact,
    RunScale,
};
use dsmc_flowfield::region::Subgrid;
use dsmc_flowfield::render;

fn main() {
    let scale = RunScale::from_args();
    let lambda = 0.5;
    println!("== FIG 4/5/6: rarefied Mach 4, 30 deg wedge (lambda = 0.5, Kn = 0.02) ==");
    println!(
        "scale: density x{:.2}, steps x{:.2}",
        scale.density, scale.steps
    );
    let run = run_wedge(lambda, scale);
    let d = run.sim.diagnostics();
    let fs = run.sim.freestream();
    println!(
        "run: {} particles ({} in flow), {} steps, {:.1} s wall",
        run.sim.n_particles(),
        d.n_flow,
        d.steps,
        run.seconds
    );
    report(
        "Knudsen number (25-cell wedge)",
        "0.02",
        &format!("{:.3}", fs.knudsen(25.0)),
    );
    report(
        "Reynolds number",
        "600 (paper's convention)",
        &format!("{:.0} (von Karman relation)", fs.reynolds(25.0)),
    );

    emit_density_artifacts(&run.field, "fig4");
    let surface = render::ascii_surface(&run.field.density, run.field.w, run.field.h, 4.0, 8);
    write_artifact("fig5_surface.txt", surface.as_bytes());
    let stag = Subgrid::stagnation_region(&run.field, 20.0, 25.0, 30.0);
    let csv = render::to_csv(&stag.values, stag.w, stag.h);
    write_artifact("fig6_stagnation_density.csv", csv.as_bytes());

    println!("\n-- paper-vs-measured --");
    match &run.metrics {
        Some(m) => {
            report_shock_metrics(m, lambda);
            write_artifact(
                "fig4_metrics.json",
                metrics_json(m, &run, lambda).as_bytes(),
            );
        }
        None => println!("SHOCK FIT FAILED — increase scale"),
    }
    println!("\nASCII density preview (fig 4 field):");
    println!(
        "{}",
        render::ascii_heatmap(&run.field.density, run.field.w, run.field.h, 4.0)
    );
}
