//! ABL-1: truncating vs stochastic vs paper-literal rounding.
//!
//! "The consistent truncation after division by 2 can lead to a
//! significant loss in total energy in stagnation regions of the flow.
//! The problem is solved by arbitrarily adding with uniform probability
//! either 0 or 1 to the result of this division."
//!
//! A cold, dense box (slow molecules, every candidate collides) is the
//! worst case the paper describes: the dropped half-LSB is a large
//! relative fraction of each velocity.  We run the three policies and
//! report the energy trajectory.
//!
//! `cargo run --release -p dsmc-bench --bin ablation_rounding`

use dsmc_baselines::nanbu::pairwise_step;
use dsmc_baselines::UniformBox;
use dsmc_bench::write_artifact;
use dsmc_fixed::Rounding;

fn energy_series(rounding: Rounding, sigma: f64, steps: usize) -> Vec<f64> {
    let mut b = UniformBox::rectangular(64, 40, sigma, 20_26);
    let e0 = b.total_energy_raw() as f64;
    let mut out = vec![1.0];
    for _ in 0..steps {
        pairwise_step(&mut b, 1.0, 40.0, rounding);
        out.push(b.total_energy_raw() as f64 / e0);
    }
    out
}

fn main() {
    println!("== ABL-1: rounding policy vs energy conservation ==");
    // A slow gas: sigma = 0.002 cells/step ≈ 2^14 raw; half an LSB per
    // halving is ~3e-5 of each value — truncation visibly drains energy.
    let sigma = 0.002;
    let steps = 400;
    let trunc = energy_series(Rounding::Truncate, sigma, steps);
    let stoch = energy_series(Rounding::Stochastic, sigma, steps);
    let lit = energy_series(Rounding::PaperLiteral, sigma, steps);

    let mut csv = String::from("step,truncate,stochastic,paper_literal\n");
    for i in 0..=steps {
        csv.push_str(&format!(
            "{},{:.6},{:.6},{:.6}\n",
            i, trunc[i], stoch[i], lit[i]
        ));
    }
    write_artifact("ablation_rounding.csv", csv.as_bytes());

    let report = |name: &str, series: &[f64]| {
        let fin = series.last().unwrap();
        println!(
            "{name:<14} energy after {steps} near-continuum steps: {:.4} of initial \
             ({:+.2}% drift)",
            fin,
            (fin - 1.0) * 100.0
        );
    };
    report("truncate", &trunc);
    report("stochastic", &stoch);
    report("paper-literal", &lit);
    println!(
        "\npaper: truncation loses energy in stagnation regions; the random-bit\n\
         correction 'in a statistical sense achieves the correct rounding'."
    );
    assert!(
        trunc.last().unwrap() < stoch.last().unwrap(),
        "truncation must drain energy relative to stochastic rounding"
    );
}
