//! FIG7: computational time per particle per step versus total particles.
//!
//! Runs the wind-tunnel workload at the paper's five populations
//! (32k … 512k; machine size fixed at 32k processors so the VP ratio
//! tracks the population), measures the communication volumes on the real
//! engine, and evaluates the CM-2 cost model on them.  Also reports the
//! wall-clock series of the rayon backend for comparison.
//!
//! `cargo run --release -p dsmc-bench --bin fig7_scaling [--quick]`

use dsmc_bench::write_artifact;
use dsmc_perfmodel::{sweep, Cm2};
use std::fmt::Write as _;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let machine = Cm2::paper();
    let sizes: &[usize] = &[32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024];
    let (warmup, measure) = if quick { (5, 8) } else { (40, 40) };
    println!("== FIG 7: us/particle/step vs total particles (P = 32k fixed) ==");
    let pts = sweep(&machine, sizes, warmup, measure, 0.0);

    let mut csv = String::from(
        "n_particles,vp_ratio,f_off_sort,f_off_pair,collisions_per_particle,\
         us_model,us_model_motion,us_model_sort,us_model_select,us_model_collide,us_wall\n",
    );
    println!(
        "{:>10} {:>5} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "particles", "VP", "f_sort", "f_pair", "col/p", "model us", "wall us"
    );
    for p in &pts {
        println!(
            "{:>10} {:>5.0} {:>8.3} {:>8.3} {:>9.3} {:>9.2} {:>9.3}",
            p.n_particles,
            p.vp_ratio,
            p.f_off_sort,
            p.f_off_pair,
            p.collisions_per_particle,
            p.us_model,
            p.us_wall
        );
        let _ = writeln!(
            csv,
            "{},{:.2},{:.4},{:.4},{:.4},{:.3},{:.3},{:.3},{:.3},{:.3},{:.4}",
            p.n_particles,
            p.vp_ratio,
            p.f_off_sort,
            p.f_off_pair,
            p.collisions_per_particle,
            p.us_model,
            p.breakdown.motion,
            p.breakdown.sort,
            p.breakdown.select,
            p.breakdown.collide,
            p.us_wall
        );
    }
    write_artifact("fig7_scaling.csv", csv.as_bytes());

    println!("\n-- paper-vs-measured (CM-2 model on measured comm volumes) --");
    println!("paper: 512k point = 7.2 us/particle/step; curve falls monotonically");
    println!("paper: largest improvement from VP ratio 1 -> 2 (pair exchange goes on-chip)");
    let first = pts.first().unwrap();
    let last = pts.last().unwrap();
    println!(
        "model: 32k = {:.2} us, 512k = {:.2} us (ratio {:.2})",
        first.us_model,
        last.us_model,
        first.us_model / last.us_model
    );
    println!(
        "wall (this machine): 32k = {:.3} us, 512k = {:.3} us",
        first.us_wall, last.us_wall
    );
}
