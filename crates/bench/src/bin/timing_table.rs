//! TAB-T: the distribution of computational time over the four sub-steps.
//!
//! The paper (CM-2): motion+boundaries 14%, sort 27%, selection 20%,
//! collision 39%.  This binary reports (a) the CM-2 model's shares at the
//! paper's operating point and (b) the measured wall-clock shares of the
//! rayon backend on the same workload — the machine balance differs, which
//! is itself a result worth recording.
//!
//! `cargo run --release -p dsmc-bench --bin timing_table [--full]`

use dsmc_bench::{report, write_artifact, RunScale};
use dsmc_engine::{SimConfig, Simulation};
use dsmc_perfmodel::{offchip_pair_fraction, offchip_sort_fraction, Cm2};

fn main() {
    let scale = RunScale::from_args();
    println!("== TAB-T: timing distribution over the four sub-steps ==");
    let mut cfg = SimConfig::paper(0.0);
    cfg.n_per_cell = (75.0 * scale.density).max(4.0);
    cfg.reservoir_fill = cfg.n_per_cell * 1.4;
    let mut sim = Simulation::new(cfg);
    let settle = (300.0 * scale.steps) as usize;
    sim.run(settle);
    sim.reset_timings();
    let measure = (300.0 * scale.steps).max(30.0) as usize;

    let machine = Cm2::paper();
    let vp = machine.vp_ratio(sim.n_particles()).round().max(1.0) as u32;
    let mut f_sort = 0.0;
    let mut f_pair = 0.0;
    let d0 = sim.diagnostics();
    for _ in 0..measure {
        sim.step();
        f_sort += offchip_sort_fraction(sim.last_sort_order(), vp);
        f_pair += offchip_pair_fraction(sim.segment_bounds(), vp);
    }
    let d1 = sim.diagnostics();
    f_sort /= measure as f64;
    f_pair /= measure as f64;
    let cols_pp = (d1.collisions - d0.collisions) as f64 / (measure as f64 * d1.n_flow as f64);

    let model = machine.step_cost(sim.n_particles(), f_sort, f_pair, cols_pp);
    let model_shares = model.shares();
    let wall = sim.timings().paper_buckets();
    let wall_uspp = sim.timings().us_per_particle_step(d1.n_flow);

    println!(
        "workload: {} particles, VP ratio {:.1}, {} measured steps",
        sim.n_particles(),
        machine.vp_ratio(sim.n_particles()),
        measure
    );
    println!(
        "\n{:<22} {:>8} {:>12} {:>14}",
        "substep", "paper", "CM-2 model", "rayon backend"
    );
    let paper = [0.14, 0.27, 0.20, 0.39];
    let names = ["motion+boundary", "sort", "select", "collide"];
    let mut csv = String::from("substep,paper,cm2_model,rayon_wall\n");
    for i in 0..4 {
        println!(
            "{:<22} {:>7.0}% {:>11.1}% {:>13.1}%",
            names[i],
            paper[i] * 100.0,
            model_shares[i] * 100.0,
            wall[i] * 100.0
        );
        csv.push_str(&format!(
            "{},{:.3},{:.3},{:.3}\n",
            names[i], paper[i], model_shares[i], wall[i]
        ));
    }
    write_artifact("timing_table.csv", csv.as_bytes());
    println!();
    report(
        "total (us/particle/step)",
        "7.2 on 32k-PE CM-2",
        &format!("model {:.2}, this machine {:.3}", model.total(), wall_uspp),
    );
}
