//! FIG1 + FIG2 + FIG3: near-continuum Mach-4 flow over the 30° wedge.
//!
//! Reproduces the paper's figures 1 (density contours), 2 (density
//! surface), 3 (stagnation-region surface) and the validation numbers read
//! off them: the 45° shock angle, the 3.7 Rankine–Hugoniot density rise,
//! the ≈3-cell shock thickness and the developed wake shock.
//!
//! `cargo run --release -p dsmc-bench --bin fig1_near_continuum [--full]`

use dsmc_bench::{
    emit_density_artifacts, metrics_json, report, report_shock_metrics, run_wedge, write_artifact,
    RunScale,
};
use dsmc_flowfield::region::Subgrid;
use dsmc_flowfield::render;

fn main() {
    let scale = RunScale::from_args();
    println!("== FIG 1/2/3: near-continuum Mach 4, 30 deg wedge (lambda = 0) ==");
    println!(
        "scale: density x{:.2}, steps x{:.2}",
        scale.density, scale.steps
    );
    let run = run_wedge(0.0, scale);
    let d = run.sim.diagnostics();
    println!(
        "run: {} particles ({} in flow), {} steps, {:.1} s wall",
        run.sim.n_particles(),
        d.n_flow,
        d.steps,
        run.seconds
    );

    // FIG 1 artifacts: contours + full density field.
    emit_density_artifacts(&run.field, "fig1");

    // FIG 2: the density surface (CSV grid is the surface; ASCII preview).
    let surface = render::ascii_surface(&run.field.density, run.field.w, run.field.h, 4.0, 8);
    write_artifact("fig2_surface.txt", surface.as_bytes());

    // FIG 3: stagnation-region zoom (both volume-corrected density and the
    // paper's uncorrected occupancy with its jagged wedge edge).
    let stag = Subgrid::stagnation_region(&run.field, 20.0, 25.0, 30.0);
    let csv = render::to_csv(&stag.values, stag.w, stag.h);
    write_artifact("fig3_stagnation_density.csv", csv.as_bytes());
    let stag_raw = Subgrid::extract(
        &run.field,
        &run.field.occupancy,
        stag.x0,
        stag.y0,
        stag.w,
        stag.h,
    );
    let csv = render::to_csv(&stag_raw.values, stag_raw.w, stag_raw.h);
    write_artifact("fig3_stagnation_occupancy_jagged.csv", csv.as_bytes());

    println!("\n-- paper-vs-measured --");
    match &run.metrics {
        Some(m) => {
            report_shock_metrics(m, 0.0);
            report(
                "stagnation max density (fig 3)",
                "approaches 3.7",
                &format!("{:.2}", stag.max()),
            );
            write_artifact("fig1_metrics.json", metrics_json(m, &run, 0.0).as_bytes());
        }
        None => println!("SHOCK FIT FAILED — increase scale"),
    }
    println!("\nASCII density preview (fig 1 field):");
    println!(
        "{}",
        render::ascii_heatmap(&run.field.density, run.field.w, run.field.h, 4.0)
    );
}
