//! ABL-3: selection schemes — McDonald–Baganoff pairwise vs Bird
//! time-counter vs Nanbu/Ploss.
//!
//! The paper's argument for its pairwise rule: Bird's scheme parallelises
//! only at cell level; Nanbu/Ploss parallelises per particle but conserves
//! energy and momentum only in the mean.  We run all three on the same
//! uniform box and measure collision rates, conservation drift, relaxation
//! speed and runtime.
//!
//! `cargo run --release -p dsmc-bench --bin ablation_selection`

use dsmc_baselines::nanbu::pairwise_step;
use dsmc_baselines::{BirdBox, NanbuBox, UniformBox};
use dsmc_bench::write_artifact;
use dsmc_fixed::Rounding;
use std::time::Instant;

const CELLS: u32 = 128;
const PER_CELL: u32 = 40;
const SIGMA: f64 = 0.05;
const P_INF: f64 = 0.5;
const STEPS: usize = 60;

struct Row {
    name: &'static str,
    interactions_per_step: f64,
    energy_drift: f64,
    momentum_drift_lsb_per_interaction: f64,
    final_kurtosis: f64,
    us_per_particle_step: f64,
}

fn measure<F: FnMut(&mut UniformBox) -> u64>(name: &'static str, mut stepper: F) -> Row {
    let mut b = UniformBox::rectangular(CELLS, PER_CELL, SIGMA, 4040);
    let e0 = b.total_energy_raw();
    let m0 = b.total_momentum_raw();
    let n = b.len();
    let t0 = Instant::now();
    let mut interactions = 0u64;
    for _ in 0..STEPS {
        interactions += stepper(&mut b);
    }
    let el = t0.elapsed().as_secs_f64();
    let e1 = b.total_energy_raw();
    let m1 = b.total_momentum_raw();
    let max_m_drift = (0..5).map(|k| (m1[k] - m0[k]).abs()).max().unwrap();
    Row {
        name,
        interactions_per_step: interactions as f64 / STEPS as f64,
        energy_drift: (e1 - e0) as f64 / e0 as f64,
        momentum_drift_lsb_per_interaction: max_m_drift as f64 / interactions.max(1) as f64,
        final_kurtosis: b.kurtosis(0),
        us_per_particle_step: el * 1e6 / (STEPS as f64 * n as f64),
    }
}

fn main() {
    println!("== ABL-3: selection schemes head to head ==");
    println!(
        "box: {CELLS} cells x {PER_CELL} particles, P_inf = {P_INF}, {STEPS} steps, \
         rectangular start\n"
    );

    let mb = measure("pairwise (MB)", |b| {
        pairwise_step(b, P_INF, PER_CELL as f64, Rounding::Stochastic)
    });

    let mut bird_driver = BirdBox::new(
        UniformBox::rectangular(CELLS, PER_CELL, SIGMA, 4040),
        P_INF,
        PER_CELL as f64,
    );
    let bird = {
        // BirdBox owns its state; adapt to the same measurement protocol.
        let e0 = bird_driver.state.total_energy_raw();
        let m0 = bird_driver.state.total_momentum_raw();
        let n = bird_driver.state.len();
        let c0 = bird_driver.collisions();
        let t0 = Instant::now();
        for _ in 0..STEPS {
            bird_driver.step();
        }
        let el = t0.elapsed().as_secs_f64();
        let e1 = bird_driver.state.total_energy_raw();
        let m1 = bird_driver.state.total_momentum_raw();
        let inter = bird_driver.collisions() - c0;
        let max_m = (0..5).map(|k| (m1[k] - m0[k]).abs()).max().unwrap();
        Row {
            name: "Bird time-counter",
            interactions_per_step: inter as f64 / STEPS as f64,
            energy_drift: (e1 - e0) as f64 / e0 as f64,
            momentum_drift_lsb_per_interaction: max_m as f64 / inter.max(1) as f64,
            final_kurtosis: bird_driver.state.kurtosis(0),
            us_per_particle_step: el * 1e6 / (STEPS as f64 * n as f64),
        }
    };

    let mut nanbu_driver = NanbuBox::new(
        UniformBox::rectangular(CELLS, PER_CELL, SIGMA, 4040),
        P_INF,
        PER_CELL as f64,
    );
    let nanbu = {
        let e0 = nanbu_driver.state.total_energy_raw();
        let m0 = nanbu_driver.state.total_momentum_raw();
        let n = nanbu_driver.state.len();
        let t0 = Instant::now();
        for _ in 0..STEPS {
            nanbu_driver.step();
        }
        let el = t0.elapsed().as_secs_f64();
        let e1 = nanbu_driver.state.total_energy_raw();
        let m1 = nanbu_driver.state.total_momentum_raw();
        let inter = nanbu_driver.updates();
        let max_m = (0..5).map(|k| (m1[k] - m0[k]).abs()).max().unwrap();
        Row {
            name: "Nanbu/Ploss",
            interactions_per_step: inter as f64 / STEPS as f64,
            energy_drift: (e1 - e0) as f64 / e0 as f64,
            momentum_drift_lsb_per_interaction: max_m as f64 / inter.max(1) as f64,
            final_kurtosis: nanbu_driver.state.kurtosis(0),
            us_per_particle_step: el * 1e6 / (STEPS as f64 * n as f64),
        }
    };

    println!(
        "{:<20} {:>12} {:>12} {:>16} {:>10} {:>10}",
        "scheme", "inter/step", "E drift", "|dP|/interaction", "kurtosis", "us/p/step"
    );
    let mut csv = String::from(
        "scheme,interactions_per_step,energy_drift,momentum_lsb_per_interaction,\
         final_kurtosis,us_per_particle_step\n",
    );
    for r in [&mb, &bird, &nanbu] {
        println!(
            "{:<20} {:>12.1} {:>12.2e} {:>16.2} {:>10.3} {:>10.3}",
            r.name,
            r.interactions_per_step,
            r.energy_drift,
            r.momentum_drift_lsb_per_interaction,
            r.final_kurtosis,
            r.us_per_particle_step
        );
        csv.push_str(&format!(
            "{},{:.2},{:.3e},{:.3},{:.4},{:.4}\n",
            r.name,
            r.interactions_per_step,
            r.energy_drift,
            r.momentum_drift_lsb_per_interaction,
            r.final_kurtosis,
            r.us_per_particle_step
        ));
    }
    write_artifact("ablation_selection.csv", csv.as_bytes());
    println!(
        "\npaper's claims, measured: the pairwise rule and Bird agree on rates and\n\
         conserve per-interaction (≤1 LSB); Nanbu/Ploss conserves only in the mean\n\
         (momentum drift per interaction orders of magnitude larger)."
    );
    assert!(
        nanbu.momentum_drift_lsb_per_interaction > 20.0 * mb.momentum_drift_lsb_per_interaction
    );
}
