//! ABL-2: the randomised sort key (partner decorrelation).
//!
//! "It is important that candidate partners change between time steps
//! otherwise the situation arises where the same partners collide
//! repeatedly leading to correlated velocity distributions."
//!
//! We relax a box from a rectangular velocity distribution with and
//! without re-mixing the within-cell order between steps, and watch the
//! excess kurtosis (0 for a Maxwellian, −1.2 for the rectangular start)
//! and the five-mode energy shares.  Without the jitter, partners are
//! frozen and the cascade stalls.
//!
//! `cargo run --release -p dsmc-bench --bin ablation_sortkey`

use dsmc_baselines::UniformBox;
use dsmc_bench::write_artifact;
use dsmc_fixed::Rounding;
use dsmc_kinetics::collision::collide_pair;

/// One pairwise collision round; `remix` re-shuffles each cell first (the
/// jittered sort's role in the engine).
fn round(b: &mut UniformBox, remix: bool) {
    if remix {
        b.remix();
    }
    let n_cells = b.n_cells();
    for c in 0..n_cells {
        let lo = b.offsets[c] as usize;
        let hi = b.offsets[c + 1] as usize;
        let mut i = lo;
        while i + 1 < hi {
            let (head, tail) = b.vel.split_at_mut(i + 1);
            let p = b.perm[i];
            let mut rng = b.rng[i];
            collide_pair(
                &mut head[i],
                &mut tail[0],
                p,
                Rounding::Stochastic,
                &mut rng,
            );
            b.rng[i] = rng;
            let ja = b.rng[i].next_below(5);
            b.perm[i] = b.perm[i].top_transpose(ja);
            let jb = b.rng[i + 1].next_below(5);
            b.perm[i + 1] = b.perm[i + 1].top_transpose(jb);
            i += 2;
        }
    }
}

fn kurtosis_series(remix: bool, steps: usize) -> Vec<f64> {
    let mut b = UniformBox::rectangular(64, 40, 0.05, 77);
    let mut out = vec![b.kurtosis(0)];
    for _ in 0..steps {
        round(&mut b, remix);
        out.push(b.kurtosis(0));
    }
    out
}

fn main() {
    println!("== ABL-2: sort-key randomisation (partner decorrelation) ==");
    let steps = 30;
    let with = kurtosis_series(true, steps);
    let without = kurtosis_series(false, steps);

    let mut csv = String::from("step,kurtosis_remixed,kurtosis_frozen\n");
    for i in 0..=steps {
        csv.push_str(&format!("{},{:.5},{:.5}\n", i, with[i], without[i]));
    }
    write_artifact("ablation_sortkey.csv", csv.as_bytes());

    println!("excess kurtosis of u (rectangular start: -1.2; Maxwellian: 0)");
    println!("{:>6} {:>14} {:>14}", "step", "remixed", "frozen pairs");
    for i in (0..=steps).step_by(5) {
        println!("{:>6} {:>14.3} {:>14.3}", i, with[i], without[i]);
    }
    println!(
        "\nwith re-mixing the distribution relaxes to Maxwellian; with frozen\n\
         partners each pair keeps re-colliding with itself and the shape stalls\n\
         exactly as the paper warns (correlated velocity distributions)."
    );
    // Judge the tails (last third) to smooth step-to-step noise.  Frozen
    // pairs equilibrate *within* each pair but cannot fully thermalise the
    // box, so their kurtosis hovers well below zero.
    let tail = |s: &[f64]| {
        let t = &s[s.len() - s.len() / 3..];
        t.iter().sum::<f64>() / t.len() as f64
    };
    let (tw, tf) = (tail(&with), tail(&without));
    println!("tail-averaged kurtosis: remixed {tw:.3}, frozen {tf:.3}");
    assert!(tw.abs() < 0.15, "remixed box must become Maxwellian ({tw})");
    assert!(
        tf < -0.25,
        "frozen box must stay visibly non-Maxwellian ({tf})"
    );
}
