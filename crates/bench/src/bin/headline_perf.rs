//! PERF-H: the headline per-particle cost and the serial comparator.
//!
//! The paper: 7.2 µs/particle/step on the 32k-processor CM-2 versus
//! 0.5 µs for the hand-vectorized Cray-2 code (a 14.4× gap in favour of
//! the conventional supercomputer, narrowed by the CM's price/size).  Our
//! analogue: the rayon data-parallel engine versus the tuned serial
//! implementation of the same physics, on the same workload.
//!
//! `cargo run --release -p dsmc-bench --bin headline_perf [--full]`

use dsmc_baselines::SerialSim;
use dsmc_bench::{report, write_artifact, RunScale};
use dsmc_engine::{SimConfig, Simulation};
use std::time::Instant;

fn main() {
    let scale = RunScale::from_args();
    println!("== PERF-H: parallel engine vs serial comparator ==");
    let mut cfg = SimConfig::paper(0.0);
    cfg.n_per_cell = (75.0 * scale.density).max(4.0);
    cfg.reservoir_fill = cfg.n_per_cell * 1.4;
    let warm = (200.0 * scale.steps) as usize;
    let measure = (200.0 * scale.steps).max(20.0) as usize;

    // Parallel engine.
    let mut par = Simulation::new(cfg.clone());
    par.run(warm);
    let n_flow = par.diagnostics().n_flow;
    let t0 = Instant::now();
    par.run(measure);
    let t_par = t0.elapsed().as_secs_f64() * 1e6 / (measure as f64 * n_flow as f64);

    // Serial comparator (same physics, one core).
    let mut ser = SerialSim::new(cfg);
    ser.run(warm);
    let n_flow_s = ser.n_flow();
    let t0 = Instant::now();
    ser.run(measure);
    let t_ser = t0.elapsed().as_secs_f64() * 1e6 / (measure as f64 * n_flow_s as f64);

    println!(
        "workload: {} flow particles, {} measured steps, {} threads",
        n_flow,
        measure,
        rayon::current_num_threads()
    );
    report(
        "data-parallel engine (us/p/step)",
        "7.2 (CM-2, 32k PEs)",
        &format!("{t_par:.3} (rayon)"),
    );
    report(
        "serial same-physics comparator",
        "0.5 (Cray-2, hand-vectorized)",
        &format!("{t_ser:.3} (one core)"),
    );
    report(
        "parallel/serial ratio",
        "14.4x slower on CM-2",
        &format!("{:.2}x {} here", (t_par / t_ser).max(t_ser / t_par),
            if t_par < t_ser { "FASTER" } else { "slower" }),
    );
    println!(
        "\nnote: the data-parallel formulation pays overheads (per-step sort,\n\
         gathers) that a tuned serial loop avoids; it loses on few processors\n\
         (1989: the CM-2 against one Cray-2 CPU; equally on a low-core host)\n\
         and wins as the processor count grows — the paper's point."
    );
    let json = format!(
        "{{\n  \"us_parallel\": {t_par:.4},\n  \"us_serial\": {t_ser:.4},\n  \
         \"threads\": {},\n  \"flow_particles\": {n_flow}\n}}\n",
        rayon::current_num_threads()
    );
    write_artifact("headline_perf.json", json.as_bytes());
}
