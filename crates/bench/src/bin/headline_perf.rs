//! PERF-H: the headline per-particle cost and the serial comparator.
//!
//! The paper: 7.2 µs/particle/step on the 32k-processor CM-2 versus
//! 0.5 µs for the hand-vectorized Cray-2 code (a 14.4× gap in favour of
//! the conventional supercomputer, narrowed by the CM's price/size).  Our
//! analogue: the rayon data-parallel engine versus the tuned serial
//! implementation of the same physics, on the same workload.
//!
//! Besides the headline comparison this binary seeds the repo's perf
//! trajectory: it A/B-times the fused sort→send pipeline against the
//! reference two-step pipeline and writes `BENCH_step.json` with steps/s
//! and per-substep ns/particle.
//!
//! `cargo run --release -p dsmc-bench --bin headline_perf [--full]`

use dsmc_baselines::SerialSim;
use dsmc_bench::{json, report, write_artifact, RunScale};
use dsmc_datapar::pack_pair;
use dsmc_engine::{
    BodySpec, Engine, ExecMode, PipelineMode, SimConfig, Simulation, SortMode, StepTimings,
};
use dsmc_fixed::Fx;
use dsmc_rng::XorShift32;
use std::time::Instant;

/// Number of alternating measurement windows per pipeline.  Fine-grained
/// interleaving plus *accumulated* per-substep timings (rather than
/// whole-window wall medians) keeps the A/B ratio stable against the
/// multi-second wall-clock drift of shared machines.
const WINDOWS: usize = 10;

/// Warm both pipelines, then step them in interleaved windows totalling
/// `measure` steps each; returns per-pipeline (accumulated timings,
/// algorithmic seconds per step, flow particles).
fn timed_ab(
    cfg_a: SimConfig,
    cfg_b: SimConfig,
    warm: usize,
    measure: usize,
) -> ((StepTimings, f64, usize), (StepTimings, f64, usize)) {
    let window = (measure / WINDOWS).max(5);
    let mut sims = [Simulation::new(cfg_a), Simulation::new(cfg_b)];
    for sim in sims.iter_mut() {
        sim.run(warm);
        sim.reset_timings();
    }
    for _ in 0..WINDOWS {
        for sim in sims.iter_mut() {
            sim.run(window);
        }
    }
    let out = |sim: &Simulation| {
        let t = *sim.timings();
        let per_step = t.total_algorithmic().as_secs_f64() / t.steps.max(1) as f64;
        (t, per_step, sim.diagnostics().n_flow)
    };
    (out(&sims[0]), out(&sims[1]))
}

fn substep_ns(t: &StepTimings, n_flow: usize) -> [(&'static str, f64); 6] {
    let per = |d: std::time::Duration| {
        if t.steps == 0 || n_flow == 0 {
            0.0
        } else {
            d.as_secs_f64() * 1e9 / (t.steps as f64 * n_flow as f64)
        }
    };
    [
        ("motion", per(t.motion)),
        ("boundary", per(t.boundary)),
        ("move", per(t.move_phase)),
        ("sort", per(t.sort)),
        ("select", per(t.select)),
        ("collide", per(t.collide)),
    ]
}

/// Combined *move-side* cost in ns/particle/step: everything that
/// advances, bounds and key-packs the population before the rank runs.
///
/// Under the fused pipeline that is the single `move` bucket (motion and
/// boundary stay zero); under the two-step reference it is motion +
/// boundary *plus an attribution estimate* of the pair-build share of its
/// sort bucket (`pair_build_est_ns`, measured standalone by
/// [`pair_build_ab`]) — the reference times key build and rank as one
/// `sort` phase, so the split cannot be observed directly.
fn move_side_ns(t: &StepTimings, n_flow: usize, pair_build_est_ns: f64) -> f64 {
    let sub = substep_ns(t, n_flow);
    let (motion, boundary, mv) = (sub[0].1, sub[1].1, sub[2].1);
    if mv > 0.0 {
        motion + boundary + mv
    } else {
        motion + boundary + pair_build_est_ns
    }
}

/// One fused-vs-two-step A/B on a scenario config: returns
/// `(name, fused timings, two-step timings, fused s/step, two-step
/// s/step, flow particles)`.
type ScenarioAb = (StepTimings, StepTimings, f64, f64, usize);

fn scenario_ab(mut cfg: SimConfig, warm: usize, measure: usize) -> ScenarioAb {
    let mut cfg_two = cfg.clone();
    cfg.pipeline = PipelineMode::Fused;
    cfg_two.pipeline = PipelineMode::TwoStep;
    let ((t_fused, step_fused, n_flow), (t_two, step_two, _)) =
        timed_ab(cfg, cfg_two, warm, measure);
    (t_fused, t_two, step_fused, step_two, n_flow)
}

/// Sequential A/B of the two pair-build sweep shapes on one engine-like
/// workload: the pre-specialisation generic sweep (reads the `u` column
/// and branches on a runtime `RngMode` per particle — reconstructed here
/// exactly as `sortstep` had it) against the `Explicit`-specialised sweep
/// that never touches `u`.  Same data, same pass structure, interleaved
/// reps, so the ratio isolates what the specialisation buys after the
/// optimizer has had its say.  Returns (generic, specialised) ns/particle.
fn pair_build_ab(n: usize) -> (f64, f64) {
    const W: u32 = 98;
    let mut rng = XorShift32::new(5);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let mut us = Vec::with_capacity(n);
    let mut rngs = Vec::with_capacity(n);
    for i in 0..n {
        xs.push(Fx::from_f64(W as f64 * rng.next_f64() * 0.999));
        ys.push(Fx::from_f64(64.0 * rng.next_f64() * 0.999));
        us.push(Fx::from_raw((rng.next_u32() as i32) >> 12));
        rngs.push(XorShift32::new(i as u32 + 1));
    }
    let mut cells = vec![0u32; n];
    let mut pairs = vec![0u64; n];
    let jb = 8u32;
    // Runtime-opaque mode flag, as the generic code path saw it.
    let dirty_mode = std::hint::black_box(false);
    let reps = 30;
    let time = |f: &mut dyn FnMut()| {
        f(); // warm
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        t0.elapsed().as_secs_f64() * 1e9 / (reps as f64 * n as f64)
    };
    let cell_of = |x: Fx, y: Fx| y.floor_int() as u32 * W + x.floor_int() as u32;
    let generic = |cells: &mut [u32], pairs: &mut [u64], rngs: &mut [XorShift32]| {
        for i in 0..n {
            let c = cell_of(xs[i], ys[i]);
            cells[i] = c;
            let jitter = if dirty_mode {
                (xs[i].raw() as u32 ^ (us[i].raw() as u32).rotate_left(5)) & ((1 << jb) - 1)
            } else {
                rngs[i].next_bits(jb)
            };
            pairs[i] = pack_pair((c << jb) | jitter, i);
        }
    };
    let specialised = |cells: &mut [u32], pairs: &mut [u64], rngs: &mut [XorShift32]| {
        for i in 0..n {
            let c = cell_of(xs[i], ys[i]);
            cells[i] = c;
            let jitter = rngs[i].next_bits(jb);
            pairs[i] = pack_pair((c << jb) | jitter, i);
        }
    };
    let ns_generic = time(&mut || generic(&mut cells, &mut pairs, &mut rngs));
    let ns_special = time(&mut || specialised(&mut cells, &mut pairs, &mut rngs));
    (ns_generic, ns_special)
}

/// Incremental-vs-full rank A/B on one config (the temporal-coherence
/// sort lever): interleaved windows, identical trajectories by the
/// order-identity invariant, so the ratio isolates pure rank cost.
struct SortModeAb {
    sort_ns_incremental: f64,
    sort_ns_full: f64,
    step_ratio: f64,
    mover_fraction: f64,
    incremental_share: f64,
    flow_particles: usize,
}

fn sortmode_ab(cfg: &SimConfig, warm: usize, measure: usize) -> SortModeAb {
    let window = (measure / WINDOWS).max(5);
    let mut cfg_inc = cfg.clone();
    cfg_inc.sort_mode = SortMode::Incremental;
    let mut cfg_full = cfg.clone();
    cfg_full.sort_mode = SortMode::Full;
    let mut sims = [Simulation::new(cfg_inc), Simulation::new(cfg_full)];
    for sim in sims.iter_mut() {
        sim.run(warm);
        sim.reset_timings();
    }
    // Path/mover counters have no reset; measure the window deltas.
    let (i0, f0) = sims[0].sort_path_counts();
    let (m0, p0) = sims[0].mover_stats();
    for _ in 0..WINDOWS {
        for sim in sims.iter_mut() {
            sim.run(window);
        }
    }
    let sort_ns = |sim: &Simulation| {
        let t = sim.timings();
        t.sort.as_secs_f64() * 1e9 / (t.steps.max(1) as f64 * sim.diagnostics().n_flow as f64)
    };
    let per_step = |sim: &Simulation| {
        let t = sim.timings();
        t.total_algorithmic().as_secs_f64() / t.steps.max(1) as f64
    };
    let (i1, f1) = sims[0].sort_path_counts();
    let (m1, p1) = sims[0].mover_stats();
    SortModeAb {
        sort_ns_incremental: sort_ns(&sims[0]),
        sort_ns_full: sort_ns(&sims[1]),
        step_ratio: per_step(&sims[1]) / per_step(&sims[0]),
        mover_fraction: (m1 - m0) as f64 / (p1 - p0).max(1) as f64,
        incremental_share: (i1 - i0) as f64 / ((i1 - i0) + (f1 - f0)).max(1) as f64,
        flow_particles: sims[0].diagnostics().n_flow,
    }
}

/// Wall-clock step cost of the sharded domain-decomposition engine at
/// shard counts {1, 2, 4} (shard count 1 routes to the single-domain
/// `Simulation` and is the baseline), interleaved windows so shared-host
/// drift cancels.  Returns `(shards, seconds_per_step)` per count.
fn shard_ab(cfg: &SimConfig, warm: usize, measure: usize) -> [(usize, f64); 3] {
    let window = (measure / WINDOWS).max(5);
    let mut engines: Vec<(usize, Engine, f64)> = [1usize, 2, 4]
        .iter()
        .map(|&s| (s, Engine::new(cfg.clone(), s), 0.0))
        .collect();
    for (_, e, _) in engines.iter_mut() {
        e.run(warm);
    }
    for _ in 0..WINDOWS {
        for (_, e, secs) in engines.iter_mut() {
            let t0 = Instant::now();
            e.run(window);
            *secs += t0.elapsed().as_secs_f64();
        }
    }
    let steps = (WINDOWS * window) as f64;
    core::array::from_fn(|i| (engines[i].0, engines[i].2 / steps))
}

/// Threaded-vs-serial shard execution A/B (the `ExecMode` lever) at one
/// shard count: same config, bit-identical trajectories (pinned by
/// `tests/shard_exec.rs`), interleaved windows so shared-host drift
/// cancels.  Workers auto-resolve (one per core, clamped to the shard
/// count); on a 1-vCPU host the threaded engine runs its single chunk on
/// the coordinator and the ratio is parity-with-noise by design — the
/// keys are honest either way, and the `--check-floor` gate only binds
/// when more than one worker actually resolved.
struct ShardThreadsAb {
    shards: usize,
    /// Workers the threaded engine actually resolved on this host.
    workers: usize,
    serial_per_step: f64,
    threaded_per_step: f64,
}

fn shard_threads_ab(cfg: &SimConfig, warm: usize, measure: usize) -> Vec<ShardThreadsAb> {
    let window = (measure / WINDOWS).max(5);
    let mut lanes: Vec<(usize, Engine, Engine, f64, f64)> = [1usize, 2, 4]
        .iter()
        .map(|&s| {
            let mut cfg_ser = cfg.clone();
            cfg_ser.exec = ExecMode::Serial;
            let mut cfg_thr = cfg.clone();
            cfg_thr.exec = ExecMode::Threaded { workers: 0 };
            (
                s,
                Engine::new(cfg_ser, s),
                Engine::new(cfg_thr, s),
                0.0,
                0.0,
            )
        })
        .collect();
    for (_, ser, thr, _, _) in lanes.iter_mut() {
        ser.run(warm);
        thr.run(warm);
    }
    for _ in 0..WINDOWS {
        for (_, ser, thr, s_secs, t_secs) in lanes.iter_mut() {
            let t0 = Instant::now();
            ser.run(window);
            *s_secs += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            thr.run(window);
            *t_secs += t0.elapsed().as_secs_f64();
        }
    }
    let steps = (WINDOWS * window) as f64;
    lanes
        .into_iter()
        .map(|(s, mut ser, mut thr, s_secs, t_secs)| {
            assert_eq!(
                ser.state_hash(),
                thr.state_hash(),
                "serial and threaded diverged at {s} shard(s) — perf numbers would be fiction"
            );
            ShardThreadsAb {
                shards: s,
                workers: thr.exec_workers(),
                serial_per_step: s_secs / steps,
                threaded_per_step: t_secs / steps,
            }
        })
        .collect()
}

fn main() {
    let scale = RunScale::from_args();
    println!("== PERF-H: parallel engine vs serial comparator ==");
    let mut cfg = SimConfig::paper(0.0);
    cfg.n_per_cell = (75.0 * scale.density).max(4.0);
    cfg.reservoir_fill = cfg.n_per_cell * 1.4;
    let warm = (200.0 * scale.steps) as usize;
    let measure = (200.0 * scale.steps).max(20.0) as usize;

    // A/B: the fused pipeline against the pre-refactor pipeline
    // (permutation materialised, ten sequential column gathers, fresh
    // buffers every step), in interleaved measurement windows.
    let mut cfg_two = cfg.clone();
    cfg_two.pipeline = PipelineMode::TwoStep;
    let ((t_fused, step_fused, n_flow), (t_twostep, step_twostep, _)) =
        timed_ab(cfg.clone(), cfg_two, warm, measure);
    let t_par = step_fused * 1e6 / n_flow as f64;

    // Serial comparator (same physics, one core).
    let cfg_shard = cfg.clone();
    let mut ser = SerialSim::new(cfg);
    ser.run(warm);
    let n_flow_s = ser.n_flow();
    let t0 = Instant::now();
    ser.run(measure);
    let t_ser = t0.elapsed().as_secs_f64() * 1e6 / (measure as f64 * n_flow_s as f64);

    // Honest pool sizes: the rayon pool the data-parallel engine runs on
    // and the cores the shard-worker pool can resolve against — on the
    // pinned 1-vCPU container both are 1, and saying so is the point.
    let rayon_threads = rayon::current_num_threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "workload: {n_flow} flow particles, {measure} measured steps, \
         {rayon_threads} rayon threads, {cores} core(s)"
    );
    report(
        "data-parallel engine (us/p/step)",
        "7.2 (CM-2, 32k PEs)",
        &format!("{t_par:.3} (rayon, fused)"),
    );
    report(
        "serial same-physics comparator",
        "0.5 (Cray-2, hand-vectorized)",
        &format!("{t_ser:.3} (one core)"),
    );
    report(
        "parallel/serial ratio",
        "14.4x slower on CM-2",
        &format!(
            "{:.2}x {} here",
            (t_par / t_ser).max(t_ser / t_par),
            if t_par < t_ser { "FASTER" } else { "slower" }
        ),
    );
    let speedup = step_twostep / step_fused;
    report(
        "fused vs two-step sort->send",
        "n/a (refactor A/B)",
        &format!("{speedup:.2}x step throughput"),
    );
    println!(
        "\nnote: the data-parallel formulation pays overheads (per-step sort,\n\
         gathers) that a tuned serial loop avoids; it loses on few processors\n\
         (1989: the CM-2 against one Cray-2 CPU; equally on a low-core host)\n\
         and wins as the processor count grows — the paper's point."
    );

    // Legacy artifact (kept name/shape for downstream tooling).
    let json_legacy = format!(
        "{{\n  \"us_parallel\": {t_par:.4},\n  \"us_serial\": {t_ser:.4},\n  \
         \"threads\": {rayon_threads},\n  \"cores\": {cores},\n  \
         \"flow_particles\": {n_flow}\n}}\n"
    );
    write_artifact("headline_perf.json", json_legacy.as_bytes());

    // The perf trajectory record.
    let mut j = json::Object::new();
    j.str("bench", "headline_perf");
    j.int("threads", rayon_threads as i64);
    j.int("cores", cores as i64);
    j.int("flow_particles", n_flow as i64);
    // The actual interleaved step count (windows round `measure` up).
    j.int("measured_steps", t_fused.steps as i64);
    let mut fused = json::Object::new();
    fused.num("steps_per_sec", 1.0 / step_fused);
    fused.num("us_per_particle_step", t_par);
    let mut sub = json::Object::new();
    for (name, ns) in substep_ns(&t_fused, n_flow) {
        sub.num(name, ns);
    }
    fused.obj("ns_per_particle_substep", sub);
    j.obj("fused", fused);
    let mut two = json::Object::new();
    two.num("steps_per_sec", 1.0 / step_twostep);
    two.num("us_per_particle_step", step_twostep * 1e6 / n_flow as f64);
    let mut sub = json::Object::new();
    for (name, ns) in substep_ns(&t_twostep, n_flow) {
        sub.num(name, ns);
    }
    two.obj("ns_per_particle_substep", sub);
    j.obj("two_step", two);
    j.num("fused_over_two_step_speedup", speedup);
    j.num("serial_us_per_particle_step", t_ser);

    // The RngMode specialisation of the pair-build sweep (ROADMAP perf
    // lever): generic-with-runtime-mode vs Explicit-specialised, measured
    // in-process on one fixture so shared-host drift cancels.
    let (ns_generic, ns_special) = pair_build_ab(n_flow.max(50_000));
    report(
        "pair-build sweep, generic vs specialised",
        "n/a (RngMode lever)",
        &format!("{ns_generic:.2} -> {ns_special:.2} ns/particle"),
    );
    let mut pb = json::Object::new();
    pb.num("generic_ns_per_particle", ns_generic);
    pb.num("explicit_specialised_ns_per_particle", ns_special);
    pb.num("speedup", ns_generic / ns_special);
    j.obj("pair_build", pb);

    // The move-side trajectory (PR 4's tentpole): combined
    // motion+boundary+pair-build cost per particle, fused single-sweep
    // move phase vs the two-step reference, on the main (wedge-paper)
    // workload and on the cylinder blunt-body scenario.  The generic
    // pair-build ns is the attribution estimate for the reference, whose
    // sort bucket times key build and rank together.
    let scen_json = |tag: &str,
                     t_f: &StepTimings,
                     t_t: &StepTimings,
                     s_f: f64,
                     s_t: f64,
                     nf: usize,
                     j: &mut json::Object| {
        let (mf, mt) = (
            move_side_ns(t_f, nf, ns_generic),
            move_side_ns(t_t, nf, ns_generic),
        );
        let mut o = json::Object::new();
        o.int("flow_particles", nf as i64);
        o.num("move_side_ns_fused", mf);
        o.num("move_side_ns_two_step", mt);
        o.num("move_side_reduction", 1.0 - mf / mt);
        o.num("full_step_ratio", s_t / s_f);
        j.obj(tag, o);
        report(
            &format!("move-side ns/particle [{tag}]"),
            "n/a (fused move phase)",
            &format!(
                "{mt:.2} -> {mf:.2} ({:.0}% less), full step {:.2}x",
                100.0 * (1.0 - mf / mt),
                s_t / s_f
            ),
        );
        s_t / s_f
    };
    let mut scen = json::Object::new();
    scen.num("pair_build_attribution_ns", ns_generic);
    // The main A/B above runs the wedge-paper config already.
    let r_wedge = scen_json(
        "wedge-paper",
        &t_fused,
        &t_twostep,
        step_fused,
        step_twostep,
        n_flow,
        &mut scen,
    );
    // The blunt-body scenario (config mirrors the registry's `cylinder`
    // case; dsmc-scenarios depends on this crate, so the builder cannot
    // be imported from there).
    let mut cyl = SimConfig::paper(0.0);
    cyl.body = BodySpec::Cylinder {
        cx: 32.0,
        cy: 32.0,
        r: 6.0,
    };
    cyl.n_per_cell = (75.0 * scale.density).max(4.0);
    cyl.reservoir_fill = cyl.n_per_cell * 1.4;
    let (ct_f, ct_t, cs_f, cs_t, c_n) = scenario_ab(cyl, warm / 2, (measure / 2).max(20));
    let r_cyl = scen_json("cylinder", &ct_f, &ct_t, cs_f, cs_t, c_n, &mut scen);
    j.obj("move_side", scen);

    // The temporal-coherence incremental sort (this PR's tentpole):
    // SortMode::Incremental vs SortMode::Full, bit-identical
    // trajectories, so the A/B isolates the rank cost.  Settled
    // wedge-paper is the headline (low mover fraction); the
    // cylinder-startup transient is the honest worst case — measured
    // from cold, where the forming bow shock keeps churn high.
    let mut sort_inc = json::Object::new();
    let record_sortmode = |tag: &str, ab: &SortModeAb, j: &mut json::Object| {
        let mut o = json::Object::new();
        o.int("flow_particles", ab.flow_particles as i64);
        o.num("sort_ns_incremental", ab.sort_ns_incremental);
        o.num("sort_ns_full", ab.sort_ns_full);
        o.num(
            "sort_substep_speedup",
            ab.sort_ns_full / ab.sort_ns_incremental,
        );
        o.num("full_step_ratio", ab.step_ratio);
        o.num("mover_fraction_mean", ab.mover_fraction);
        o.num("incremental_share", ab.incremental_share);
        j.obj(tag, o);
        report(
            &format!("incremental sort [{tag}]"),
            "n/a (temporal-coherence lever)",
            &format!(
                "sort {:.2} -> {:.2} ns/p ({:.2}x), step {:.2}x, movers {:.1}%, repair {:.0}%",
                ab.sort_ns_full,
                ab.sort_ns_incremental,
                ab.sort_ns_full / ab.sort_ns_incremental,
                ab.step_ratio,
                100.0 * ab.mover_fraction,
                100.0 * ab.incremental_share
            ),
        );
    };
    let ab_wedge = sortmode_ab(&cfg_shard, warm / 2, (measure / 2).max(20));
    record_sortmode("wedge-paper", &ab_wedge, &mut sort_inc);
    let mut cyl_t = SimConfig::paper(0.0);
    cyl_t.body = BodySpec::Cylinder {
        cx: 32.0,
        cy: 32.0,
        r: 6.0,
    };
    cyl_t.n_per_cell = (75.0 * scale.density).max(4.0);
    cyl_t.reservoir_fill = cyl_t.n_per_cell * 1.4;
    let ab_cyl = sortmode_ab(&cyl_t, 5, (measure / 2).max(20));
    record_sortmode("cylinder-startup", &ab_cyl, &mut sort_inc);
    j.obj("sort_incremental", sort_inc);

    // The sharded-engine baseline (SHARDING.md, "Performance honesty"):
    // bit-identical physics at shard counts {1, 2, 4} on the wedge
    // workload, recorded as the honest ratio against the single-domain
    // engine on whatever cores this host has.  On the 1-vCPU container
    // the exchange/merge overhead makes the ratio < 1 by construction;
    // the keys exist so a real multi-core measurement lands next to the
    // number it replaces.  Not part of the `--check-floor` gate.
    let shard_res = shard_ab(&cfg_shard, warm / 2, (measure / 2).max(20));
    let base_step = shard_res[0].1;
    let mut sh = json::Object::new();
    sh.int("threads", rayon_threads as i64);
    for (s, per_step) in shard_res {
        let mut o = json::Object::new();
        o.num("steps_per_sec", 1.0 / per_step);
        o.num("ratio_vs_single_domain", base_step / per_step);
        sh.obj(&format!("shard{s}"), o);
        report(
            &format!("sharded engine, {s} shard(s)"),
            "n/a (bit-identical physics)",
            &format!(
                "{:.1} steps/s ({:.2}x vs single-domain)",
                1.0 / per_step,
                base_step / per_step
            ),
        );
    }
    j.obj("sharding", sh);

    // Threaded shard execution (ExecMode::Threaded vs Serial, this PR's
    // tentpole) per shard count, against the same pinned 1-vCPU
    // `sharding` baseline above.  The worker count each threaded engine
    // actually resolved is recorded next to its ratio: on this container
    // that is 1 everywhere (shard 1 routes to the single-domain engine;
    // one core resolves one worker), so the ratios read as
    // parity-with-noise — which is the honest number, and exactly what a
    // multi-core rerun will replace.
    let st_res = shard_threads_ab(&cfg_shard, warm / 2, (measure / 2).max(20));
    let mut st = json::Object::new();
    st.int("cores", cores as i64);
    for ab in &st_res {
        let mut o = json::Object::new();
        o.int("workers", ab.workers as i64);
        o.num("steps_per_sec_serial", 1.0 / ab.serial_per_step);
        o.num("steps_per_sec_threaded", 1.0 / ab.threaded_per_step);
        o.num(
            "threaded_over_serial",
            ab.serial_per_step / ab.threaded_per_step,
        );
        st.obj(&format!("shard{}", ab.shards), o);
        report(
            &format!("threaded exec, {} shard(s)", ab.shards),
            "n/a (bit-identical physics)",
            &format!(
                "{:.1} steps/s, {:.2}x vs serial ({} worker(s))",
                1.0 / ab.threaded_per_step,
                ab.serial_per_step / ab.threaded_per_step,
                ab.workers
            ),
        );
    }
    j.obj("shard_threads", st);

    let out = j.pretty();
    write_artifact("BENCH_step.json", out.as_bytes());
    // The perf trajectory record lives at the repo root (checked in, one
    // entry per perf PR); the artifacts/ copy is the CI upload.
    std::fs::write("BENCH_step.json", out.as_bytes()).expect("write BENCH_step.json");
    println!("  wrote BENCH_step.json");

    // CI regression floor (`--check-floor`): the fused pipeline must
    // never fall behind the two-step reference on a full step, and the
    // incremental sort must never fall behind the full radix rank on the
    // settled wedge workload it exists for.
    if std::env::args().any(|a| a == "--check-floor") {
        let worst = speedup.min(r_wedge).min(r_cyl);
        if worst < 1.0 {
            eprintln!("FAIL: fused-vs-two-step full-step ratio {worst:.3} < 1.0");
            std::process::exit(1);
        }
        println!("check-floor: worst fused-vs-two-step ratio {worst:.3} >= 1.0");
        if ab_wedge.step_ratio < 1.0 {
            eprintln!(
                "FAIL: incremental-vs-full step ratio {:.3} < 1.0 on settled wedge-paper",
                ab_wedge.step_ratio
            );
            std::process::exit(1);
        }
        println!(
            "check-floor: incremental-vs-full step ratio {:.3} >= 1.0",
            ab_wedge.step_ratio
        );
        // Threaded shard execution must beat serial wherever more than
        // one worker actually resolved; with a single worker the two
        // modes run the same chunk on the coordinator and the gate is
        // vacuous by design (this pinned container resolves 1).
        for ab in &st_res {
            let ratio = ab.serial_per_step / ab.threaded_per_step;
            if ab.workers > 1 && ratio < 1.0 {
                eprintln!(
                    "FAIL: threaded-vs-serial step ratio {ratio:.3} < 1.0 at {} shard(s) \
                     with {} workers",
                    ab.shards, ab.workers
                );
                std::process::exit(1);
            }
            println!(
                "check-floor: threaded-vs-serial ratio {ratio:.3} at {} shard(s) \
                 ({} worker(s){})",
                ab.shards,
                ab.workers,
                if ab.workers > 1 { "" } else { ", gate vacuous" }
            );
        }
    }
}
