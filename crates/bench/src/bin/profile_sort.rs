//! Phase-by-phase profile of the two sort→send pipelines on an
//! engine-realistic workload: where does each nanosecond go?
//!
//! `cargo run --release -p dsmc-bench --bin profile_sort [n]`

use dsmc_datapar::{
    fill_cells_from_bounds, first_pass_bits, pack_pair, radix_chunk_len,
    segment_bounds_from_sorted, segment_bounds_from_sorted_into,
    sort_order_and_bounds_from_pairs_cells, sort_order_from_pairs, sort_perm_by_key, BoundsScratch,
    SortScratch,
};
use dsmc_engine::particles::ParticleStore;
use dsmc_fixed::Fx;
use dsmc_rng::{Perm5, XorShift32};
use std::time::Instant;

fn store(n: usize) -> ParticleStore {
    let mut rng = XorShift32::new(7);
    let mut s = ParticleStore::default();
    for i in 0..n {
        let vel = core::array::from_fn(|_| Fx::from_raw((rng.next_u32() as i32) >> 12));
        s.push(
            Fx::from_raw((rng.next_u32() as i32) >> 8).max(Fx::ZERO),
            Fx::from_raw((rng.next_u32() as i32) >> 8).max(Fx::ZERO),
            vel,
            Perm5::IDENTITY,
            XorShift32::new(i as u32 + 1),
            rng.next_u32() % 6912,
        );
    }
    s
}

fn time_ns_per(n: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    // One warm call outside the window.
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e9 / (reps as f64 * n as f64)
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(130_000);
    let reps = 20;
    let key_bits = 22u32;
    let jitter_bits = 8u32;
    println!(
        "n = {n}, reps = {reps}, threads = {}",
        rayon::current_num_threads()
    );

    // Shared fixture: keys like the engine's (cell << jitter | jitter).
    let mut krng = XorShift32::new(3);
    let keys: Vec<u32> = (0..n as u32)
        .map(|_| ((krng.next_u32() % 6912) << jitter_bits) | (krng.next_u32() & 0xFF))
        .collect();

    // --- fused path, phase by phase -------------------------------------
    let mut scratch = SortScratch::new();
    let mut order = Vec::new();
    let mut bounds = Vec::new();
    let mut bscratch = BoundsScratch::default();
    let mut s_fused = store(n);

    let t_pack = time_ns_per(n, reps, || {
        let pairs = scratch.input_pairs(n);
        for (i, p) in pairs.iter_mut().enumerate() {
            *p = pack_pair(keys[i], i);
        }
    });
    let t_rank = time_ns_per(n, reps, || {
        let pairs = scratch.input_pairs(n);
        for (i, p) in pairs.iter_mut().enumerate() {
            *p = pack_pair(keys[i], i);
        }
        sort_order_from_pairs(key_bits, &mut scratch, &mut order);
    }) - t_pack;
    let t_send = time_ns_per(n, reps, || s_fused.apply_order_fused(&order));
    let t_bounds = time_ns_per(n, reps, || {
        segment_bounds_from_sorted_into(&s_fused.cell, &mut bounds, &mut bscratch)
    });
    println!("fused:    pack {t_pack:6.2}  rank {t_rank:6.2}  send {t_send:6.2}  bounds {t_bounds:6.2}  ns/p");

    // --- two-step reference, phase by phase ------------------------------
    let mut s_two = store(n);
    let mut perm = Vec::new();
    let t_perm = time_ns_per(n, reps, || perm = sort_perm_by_key(&keys, key_bits));
    let t_apply = time_ns_per(n, reps, || s_two.apply_order(&perm));
    let t_bounds2 = time_ns_per(n, reps, || {
        let _ = segment_bounds_from_sorted(&s_two.cell);
    });
    println!("two-step: perm {t_perm:6.2}  apply {t_apply:6.2}  bounds {t_bounds2:6.2}  ns/p");

    // --- PR-4 levers: histogram-seeded rank + cell reconstruction --------
    // (a) Fold the first radix histogram into the packing sweep: the
    // seeded rank skips one full count pass over the pair buffer, at the
    // cost of a counter increment per particle in the pack loop.
    let cell_bits = key_bits - jitter_bits;
    let first_bits = first_pass_bits(cell_bits, jitter_bits);
    let first_mask = (1u32 << first_bits) - 1;
    let chunk = radix_chunk_len(n);
    let mut seg_cells = Vec::new();
    let t_pack_hist = time_ns_per(n, reps, || {
        let (pairs, hist) = scratch.input_pairs_and_hist(n, first_bits);
        for (i, p) in pairs.iter_mut().enumerate() {
            *p = pack_pair(keys[i], i);
            hist[((i / chunk) << first_bits) + (keys[i] & first_mask) as usize] += 1;
        }
    });
    let t_rank_seeded = time_ns_per(n, reps, || {
        let (pairs, hist) = scratch.input_pairs_and_hist(n, first_bits);
        for (i, p) in pairs.iter_mut().enumerate() {
            *p = pack_pair(keys[i], i);
            hist[((i / chunk) << first_bits) + (keys[i] & first_mask) as usize] += 1;
        }
        sort_order_and_bounds_from_pairs_cells(
            cell_bits,
            jitter_bits,
            &mut scratch,
            &mut order,
            &mut bounds,
            &mut seg_cells,
            true,
        );
    }) - t_pack_hist;
    let t_rank_unseeded = time_ns_per(n, reps, || {
        let pairs = scratch.input_pairs(n);
        for (i, p) in pairs.iter_mut().enumerate() {
            *p = pack_pair(keys[i], i);
        }
        sort_order_and_bounds_from_pairs_cells(
            cell_bits,
            jitter_bits,
            &mut scratch,
            &mut order,
            &mut bounds,
            &mut seg_cells,
            false,
        );
    }) - t_pack;
    println!(
        "seeded rank: pack+count {t_pack_hist:5.2} (vs pack {t_pack:5.2})  \
         rank {t_rank_seeded:6.2} (vs unseeded {t_rank_unseeded:6.2})  \
         total {:6.2} vs {:6.2}  ns/p",
        t_pack_hist + t_rank_seeded,
        t_pack + t_rank_unseeded
    );

    // (b) Re-materialise the sorted cell column from (bounds, seg_cells)
    // with sequential stores instead of gathering it through the order.
    let sorted_cells: Vec<u32> = order
        .iter()
        .map(|&o| keys[o as usize] >> jitter_bits)
        .collect();
    let mut cells_out = vec![0u32; n];
    let t_cell_gather = time_ns_per(n, reps, || {
        dsmc_datapar::apply_perm(&sorted_cells, &order, &mut cells_out);
    });
    let t_cell_fill = time_ns_per(n, reps, || {
        fill_cells_from_bounds(&bounds, &seg_cells, &mut cells_out);
    });
    println!("cell column: gather {t_cell_gather:5.2}  fill-from-bounds {t_cell_fill:5.2}  ns/p");

    // --- one-column gather microbenchmark --------------------------------
    let src: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let mut dst = vec![0u32; n];
    let t_iter = time_ns_per(n, reps, || {
        dsmc_datapar::apply_perm(&src, &order, &mut dst);
    });
    let t_loop = time_ns_per(n, reps, || {
        let w = dsmc_datapar::DisjointWrites::new(&mut dst[..]);
        for (i, &o) in order.iter().enumerate().take(n) {
            unsafe { w.write(i, src[o as usize]) };
        }
    });
    let t_loop_sliced = time_ns_per(n, reps, || {
        let w = dsmc_datapar::DisjointWrites::new(&mut dst[..]);
        for (i, &o) in order.iter().enumerate() {
            unsafe { w.write(i, src[o as usize]) };
        }
    });
    println!("1-col gather: apply_perm {t_iter:5.2}  indexed loop {t_loop:5.2}  iter loop {t_loop_sliced:5.2}  ns/p");
}
