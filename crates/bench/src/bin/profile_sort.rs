//! Phase-by-phase profile of the two sort→send pipelines on an
//! engine-realistic workload: where does each nanosecond go?
//!
//! `cargo run --release -p dsmc-bench --bin profile_sort [n]`

use dsmc_datapar::{
    fill_cells_from_bounds, first_pass_bits, incremental_rank, pack_pair, radix_chunk_len,
    segment_bounds_from_sorted, segment_bounds_from_sorted_into,
    sort_order_and_bounds_from_pairs_cells, sort_order_from_pairs, sort_perm_by_key, BoundsScratch,
    IncrementalScratch, SortScratch,
};
use dsmc_engine::particles::ParticleStore;
use dsmc_engine::{BodySpec, SimConfig, Simulation};
use dsmc_fixed::Fx;
use dsmc_rng::{Perm5, XorShift32};
use std::time::Instant;

fn store(n: usize) -> ParticleStore {
    let mut rng = XorShift32::new(7);
    let mut s = ParticleStore::default();
    for i in 0..n {
        let vel = core::array::from_fn(|_| Fx::from_raw((rng.next_u32() as i32) >> 12));
        s.push(
            Fx::from_raw((rng.next_u32() as i32) >> 8).max(Fx::ZERO),
            Fx::from_raw((rng.next_u32() as i32) >> 8).max(Fx::ZERO),
            vel,
            Perm5::IDENTITY,
            XorShift32::new(i as u32 + 1),
            rng.next_u32() % 6912,
        );
    }
    s
}

fn time_ns_per(n: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    // One warm call outside the window.
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e9 / (reps as f64 * n as f64)
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(130_000);
    let reps = 20;
    let key_bits = 22u32;
    let jitter_bits = 8u32;
    println!(
        "n = {n}, reps = {reps}, threads = {}",
        rayon::current_num_threads()
    );

    // Shared fixture: keys like the engine's (cell << jitter | jitter).
    let mut krng = XorShift32::new(3);
    let keys: Vec<u32> = (0..n as u32)
        .map(|_| ((krng.next_u32() % 6912) << jitter_bits) | (krng.next_u32() & 0xFF))
        .collect();

    // --- fused path, phase by phase -------------------------------------
    let mut scratch = SortScratch::new();
    let mut order = Vec::new();
    let mut bounds = Vec::new();
    let mut bscratch = BoundsScratch::default();
    let mut s_fused = store(n);

    let t_pack = time_ns_per(n, reps, || {
        let pairs = scratch.input_pairs(n);
        for (i, p) in pairs.iter_mut().enumerate() {
            *p = pack_pair(keys[i], i);
        }
    });
    let t_rank = time_ns_per(n, reps, || {
        let pairs = scratch.input_pairs(n);
        for (i, p) in pairs.iter_mut().enumerate() {
            *p = pack_pair(keys[i], i);
        }
        sort_order_from_pairs(key_bits, &mut scratch, &mut order);
    }) - t_pack;
    let t_send = time_ns_per(n, reps, || s_fused.apply_order_fused(&order));
    let t_bounds = time_ns_per(n, reps, || {
        segment_bounds_from_sorted_into(&s_fused.cell, &mut bounds, &mut bscratch)
    });
    println!("fused:    pack {t_pack:6.2}  rank {t_rank:6.2}  send {t_send:6.2}  bounds {t_bounds:6.2}  ns/p");

    // --- two-step reference, phase by phase ------------------------------
    let mut s_two = store(n);
    let mut perm = Vec::new();
    let t_perm = time_ns_per(n, reps, || perm = sort_perm_by_key(&keys, key_bits));
    let t_apply = time_ns_per(n, reps, || s_two.apply_order(&perm));
    let t_bounds2 = time_ns_per(n, reps, || {
        let _ = segment_bounds_from_sorted(&s_two.cell);
    });
    println!("two-step: perm {t_perm:6.2}  apply {t_apply:6.2}  bounds {t_bounds2:6.2}  ns/p");

    // --- PR-4 levers: histogram-seeded rank + cell reconstruction --------
    // (a) Fold the first radix histogram into the packing sweep: the
    // seeded rank skips one full count pass over the pair buffer, at the
    // cost of a counter increment per particle in the pack loop.
    let cell_bits = key_bits - jitter_bits;
    let first_bits = first_pass_bits(cell_bits, jitter_bits);
    let first_mask = (1u32 << first_bits) - 1;
    let chunk = radix_chunk_len(n);
    let mut seg_cells = Vec::new();
    let t_pack_hist = time_ns_per(n, reps, || {
        let (pairs, hist) = scratch.input_pairs_and_hist(n, first_bits);
        for (i, p) in pairs.iter_mut().enumerate() {
            *p = pack_pair(keys[i], i);
            hist[((i / chunk) << first_bits) + (keys[i] & first_mask) as usize] += 1;
        }
    });
    let t_rank_seeded = time_ns_per(n, reps, || {
        let (pairs, hist) = scratch.input_pairs_and_hist(n, first_bits);
        for (i, p) in pairs.iter_mut().enumerate() {
            *p = pack_pair(keys[i], i);
            hist[((i / chunk) << first_bits) + (keys[i] & first_mask) as usize] += 1;
        }
        sort_order_and_bounds_from_pairs_cells(
            cell_bits,
            jitter_bits,
            &mut scratch,
            &mut order,
            &mut bounds,
            &mut seg_cells,
            true,
        );
    }) - t_pack_hist;
    let t_rank_unseeded = time_ns_per(n, reps, || {
        let pairs = scratch.input_pairs(n);
        for (i, p) in pairs.iter_mut().enumerate() {
            *p = pack_pair(keys[i], i);
        }
        sort_order_and_bounds_from_pairs_cells(
            cell_bits,
            jitter_bits,
            &mut scratch,
            &mut order,
            &mut bounds,
            &mut seg_cells,
            false,
        );
    }) - t_pack;
    println!(
        "seeded rank: pack+count {t_pack_hist:5.2} (vs pack {t_pack:5.2})  \
         rank {t_rank_seeded:6.2} (vs unseeded {t_rank_unseeded:6.2})  \
         total {:6.2} vs {:6.2}  ns/p",
        t_pack_hist + t_rank_seeded,
        t_pack + t_rank_unseeded
    );

    // (b) Re-materialise the sorted cell column from (bounds, seg_cells)
    // with sequential stores instead of gathering it through the order.
    let sorted_cells: Vec<u32> = order
        .iter()
        .map(|&o| keys[o as usize] >> jitter_bits)
        .collect();
    let mut cells_out = vec![0u32; n];
    let t_cell_gather = time_ns_per(n, reps, || {
        dsmc_datapar::apply_perm(&sorted_cells, &order, &mut cells_out);
    });
    let t_cell_fill = time_ns_per(n, reps, || {
        fill_cells_from_bounds(&bounds, &seg_cells, &mut cells_out);
    });
    println!("cell column: gather {t_cell_gather:5.2}  fill-from-bounds {t_cell_fill:5.2}  ns/p");

    // --- one-column gather microbenchmark --------------------------------
    let src: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let mut dst = vec![0u32; n];
    let t_iter = time_ns_per(n, reps, || {
        dsmc_datapar::apply_perm(&src, &order, &mut dst);
    });
    let t_loop = time_ns_per(n, reps, || {
        let w = dsmc_datapar::DisjointWrites::new(&mut dst[..]);
        for (i, &o) in order.iter().enumerate().take(n) {
            unsafe { w.write(i, src[o as usize]) };
        }
    });
    let t_loop_sliced = time_ns_per(n, reps, || {
        let w = dsmc_datapar::DisjointWrites::new(&mut dst[..]);
        for (i, &o) in order.iter().enumerate() {
            unsafe { w.write(i, src[o as usize]) };
        }
    });
    println!("1-col gather: apply_perm {t_iter:5.2}  indexed loop {t_loop:5.2}  iter loop {t_loop_sliced:5.2}  ns/p");

    // --- incremental (temporal-coherence) repair vs full rank ------------
    // Measured-and-rejected repair designs, for the record:
    //   (1) classify per prev segment + serial cell scatter + per-segment
    //       `sort_unstable` — measured 0.69x of the seeded full rank: the
    //       within-segment comparison sorts pay ~6 compares/element, and
    //       jitter re-randomisation means every segment re-sorts every
    //       step (there is no reusable within-cell order to exploit, so
    //       mover-extraction + binary-merge designs die the same way).
    //   (2) self-counted two-scatter repair (classify pass accumulating
    //       cell + jitter histograms, then jitter scatter, then cell
    //       scatter) — measured 0.81x: the classify pass re-derives what
    //       the move sweep's seeded histogram and mover count already
    //       hold, so it can never beat a rank whose first count pass the
    //       sweep already paid for.
    //   (3) parallelising the repair's scatters — needs per-chunk cursor
    //       tables for stability, i.e. rebuilding the radix passes the
    //       repair exists to skip; rejected on inspection.
    // The shipped repair is (2) minus the classify pass: the sweep seeds
    // the jitter histogram (chunk-major first radix digit) and counts the
    // movers, leaving two stable serial counting scatters.
    let total_cells = 6912u32;
    let sorted_cells0: Vec<u32> = order
        .iter()
        .map(|&o| keys[o as usize] >> jitter_bits)
        .collect();
    let (prev_bounds, prev_cells) = (bounds.clone(), seg_cells.clone());
    let mut inc = IncrementalScratch::new();
    let (mut io, mut ib, mut ic) = (Vec::new(), Vec::new(), Vec::new());
    println!("incremental repair vs full rank (same keys, prev structure from last step):");
    for mover_pct in [5u32, 15, 30, 60] {
        let mut prng = XorShift32::new(1000 + mover_pct);
        let step_keys: Vec<u32> = sorted_cells0
            .iter()
            .map(|&c| {
                let r = prng.next_u32();
                let cell = if r % 100 < mover_pct {
                    (r >> 8) % total_cells
                } else {
                    c
                };
                (cell << jitter_bits) | (prng.next_u32() & 0xFF)
            })
            .collect();
        let chunk = radix_chunk_len(n);
        let jmask = (1u32 << jitter_bits) - 1;
        let pack_seeded = |scratch: &mut SortScratch| {
            let (pairs, hist) = scratch.input_pairs_and_hist(n, jitter_bits);
            for (i, (p, &k)) in pairs.iter_mut().zip(&step_keys).enumerate() {
                *p = pack_pair(k, i);
                hist[((i / chunk) << jitter_bits) + (k & jmask) as usize] += 1;
            }
        };
        let t_rep = time_ns_per(n, reps, || {
            pack_seeded(&mut scratch);
            assert!(incremental_rank(
                jitter_bits,
                total_cells,
                &prev_bounds,
                &prev_cells,
                true,
                &mut scratch,
                &mut inc,
                &mut io,
                &mut ib,
                &mut ic,
            ));
        }) - t_pack_hist;
        let t_full = time_ns_per(n, reps, || {
            pack_seeded(&mut scratch);
            sort_order_and_bounds_from_pairs_cells(
                cell_bits,
                jitter_bits,
                &mut scratch,
                &mut order,
                &mut bounds,
                &mut seg_cells,
                true,
            );
        }) - t_pack_hist;
        assert_eq!(io, order, "repair must be bit-identical to the full rank");
        println!(
            "  movers {mover_pct:2}%: repair {t_rep:6.2}  seeded full {t_full:6.2}  ns/p  ({:.2}x)",
            t_full / t_rep
        );
    }

    // --- mover-fraction histogram on engine-realistic runs ---------------
    // What does the temporal coherence actually look like, per scenario?
    // This is the measurement behind `DEFAULT_MOVER_THRESHOLD`: settled
    // flows sit far below it, and even a cold cylinder startup never
    // crosses 50% at paper-like densities.
    let histogram = |label: &str, mut sim: Simulation, warm: usize, measure: usize| {
        sim.run(warm);
        let mut hist = [0u32; 10];
        let (mut pm, mut pp) = sim.mover_stats();
        let (mut frac_sum, mut samples) = (0.0f64, 0u32);
        for _ in 0..measure {
            sim.run(1);
            let (m, p) = sim.mover_stats();
            let (dm, dp) = (m - pm, p - pp);
            (pm, pp) = (m, p);
            if dp == 0 {
                continue; // withdrawal step: no mover accounting
            }
            let f = dm as f64 / dp as f64;
            frac_sum += f;
            samples += 1;
            hist[((f * 10.0) as usize).min(9)] += 1;
        }
        let bars: Vec<String> = hist.iter().map(|&c| format!("{c:3}")).collect();
        println!(
            "  {label:<18} mean {:5.1}%  decile counts [{}]",
            100.0 * frac_sum / samples.max(1) as f64,
            bars.join(" ")
        );
    };
    println!("mover-fraction histograms (deciles 0-10%, 10-20%, ...):");
    let mut wedge = SimConfig::paper(0.0);
    wedge.n_per_cell = 12.0;
    histogram("settled wedge", Simulation::new(wedge), 80, 40);
    let mut cyl = SimConfig::paper(0.0);
    cyl.body = BodySpec::Cylinder {
        cx: 32.0,
        cy: 32.0,
        r: 6.0,
    };
    cyl.n_per_cell = 12.0;
    histogram("cylinder startup", Simulation::new(cyl), 0, 40);
}
