//! Experiment harness: regenerates every figure and table of the paper.
//!
//! Each binary under `src/bin/` reproduces one paper artifact (see
//! `DESIGN.md` §4 for the index and `EXPERIMENTS.md` for recorded
//! results); this library holds the shared machinery — run drivers,
//! artifact writers, and the scale handling that lets every experiment run
//! at a reduced default scale or at the paper's full 512k-particle scale
//! with `--full`.

#![warn(missing_docs)]

use dsmc_engine::{SampledField, SimConfig, Simulation};
use dsmc_flowfield::shock::{wedge_metrics, ShockMetrics};
use dsmc_flowfield::{contour, render};
use std::io::Write as _;
use std::path::{Path, PathBuf};

pub mod json;

/// Scale of an experiment run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunScale {
    /// Multiplier on the paper's particles-per-cell (1.0 = 75/cell).
    pub density: f64,
    /// Multiplier on the paper's step counts (1.0 = 1200 + 2000).
    pub steps: f64,
}

impl RunScale {
    /// The paper's full protocol: ~512k particles, 1200 + 2000 steps.
    pub const FULL: RunScale = RunScale {
        density: 1.0,
        steps: 1.0,
    };

    /// Default reduced scale: ~40% density, 2/3 of the steps — finishes a
    /// wedge study in well under a minute while preserving every
    /// qualitative feature.
    pub const QUICK: RunScale = RunScale {
        density: 0.4,
        steps: 0.667,
    };

    /// Parse from the command line: `--full` selects [`RunScale::FULL`],
    /// `--scale <density> <steps>` selects a custom scale.
    pub fn from_args() -> RunScale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--full") {
            return RunScale::FULL;
        }
        if let Some(pos) = args.iter().position(|a| a == "--scale") {
            let density = args
                .get(pos + 1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.4);
            let steps = args
                .get(pos + 2)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.667);
            return RunScale { density, steps };
        }
        RunScale::QUICK
    }
}

/// Result of one wedge experiment.
pub struct WedgeRun {
    /// The simulation after the averaging window.
    pub sim: Simulation,
    /// Time-averaged fields.
    pub field: SampledField,
    /// Extracted shock metrics (None if the fit failed).
    pub metrics: Option<ShockMetrics>,
    /// Wall-clock seconds of the whole run.
    pub seconds: f64,
}

/// Run the paper's wedge experiment at mean free path `lambda` and the
/// given scale; 1200·s steps to steady state, 2000·s averaged.
pub fn run_wedge(lambda: f64, scale: RunScale) -> WedgeRun {
    let mut cfg = SimConfig::paper(lambda);
    cfg.n_per_cell = (75.0 * scale.density).max(4.0);
    cfg.reservoir_fill = cfg.n_per_cell * 1.4;
    let settle = (1200.0 * scale.steps) as usize;
    let average = (2000.0 * scale.steps) as usize;
    let t0 = std::time::Instant::now();
    let mut sim = Simulation::new(cfg);
    sim.run(settle);
    sim.begin_sampling();
    sim.run(average);
    let field = sim.finish_sampling();
    let metrics = wedge_metrics(&field, 20.0, 25.0, 30.0, 4.0, 1.4);
    WedgeRun {
        sim,
        field,
        metrics,
        seconds: t0.elapsed().as_secs_f64(),
    }
}

/// Directory where experiment artifacts are written.
pub fn artifact_dir() -> PathBuf {
    try_artifact_dir().expect("create artifact dir")
}

/// [`artifact_dir`] with the I/O failure surfaced instead of panicking —
/// what long-running callers (the run supervisor) use.
pub fn try_artifact_dir() -> std::io::Result<PathBuf> {
    let dir = std::env::var("DSMC_ARTIFACTS").unwrap_or_else(|_| "artifacts".into());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p)?;
    Ok(p)
}

/// Write a text/binary artifact and log its path.
pub fn write_artifact(name: &str, bytes: &[u8]) -> PathBuf {
    try_write_artifact(name, bytes).expect("write artifact")
}

/// [`write_artifact`] with the I/O failure surfaced instead of panicking.
pub fn try_write_artifact(name: &str, bytes: &[u8]) -> std::io::Result<PathBuf> {
    let path = try_artifact_dir()?.join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(bytes)?;
    println!("  wrote {}", path.display());
    Ok(path)
}

/// Emit the standard density artifacts for one field: CSV grid, PGM
/// image, contour SVG.  `tag` prefixes the file names.
pub fn emit_density_artifacts(field: &SampledField, tag: &str) {
    let csv = render::to_csv(&field.density, field.w, field.h);
    write_artifact(&format!("{tag}_density.csv"), csv.as_bytes());
    let vmax = field.density.iter().cloned().fold(0.0, f64::max).max(1.0);
    let pgm = render::to_pgm(&field.density, field.w, field.h, vmax);
    write_artifact(&format!("{tag}_density.pgm"), &pgm);
    // The paper's contour plots: evenly spaced levels between freestream
    // and the post-shock maximum.
    let levels: Vec<f64> = (1..=9)
        .map(|k| 1.0 + (vmax - 1.0) * k as f64 / 10.0)
        .collect();
    let contours = contour::contour_levels(&field.density, field.w, field.h, &levels);
    let svg = render::contours_to_svg(&contours, field.w, field.h);
    write_artifact(&format!("{tag}_contours.svg"), svg.as_bytes());
}

/// Print one row of the paper-vs-measured summary.
pub fn report(label: &str, paper: &str, measured: &str) {
    println!("{label:<42} paper: {paper:<20} measured: {measured}");
}

/// Standard shock-metric report block shared by fig1 and fig4.
pub fn report_shock_metrics(m: &ShockMetrics, lambda: f64) {
    report(
        "shock angle (deg)",
        &format!("45 (theory {:.1})", m.theory_angle_deg),
        &format!("{:.1}", m.shock_angle_deg),
    );
    report(
        "post-shock density ratio",
        &format!("3.7 (RH {:.2})", m.theory_density_ratio),
        &format!("{:.2}", m.density_ratio),
    );
    let paper_thickness = if lambda == 0.0 { "3 cells" } else { "5 cells" };
    report(
        "shock thickness (25-75 rise, scaled)",
        paper_thickness,
        &format!("{:.1} cells", m.thickness_rise),
    );
    report(
        "wake recompression",
        if lambda == 0.0 {
            "wake shock present"
        } else {
            "washed out"
        },
        &format!(
            "factor {:.1}{}",
            m.wake_recompression,
            m.wake_recovery_length
                .map(|l| format!(", recovery over {l:.0} cells"))
                .unwrap_or_else(|| ", no recompression".into())
        ),
    );
}

/// Serialize metrics + provenance to JSON (hand-rolled: the build runs
/// offline, so there is no serde in the dependency graph).
pub fn metrics_json(m: &ShockMetrics, run: &WedgeRun, lambda: f64) -> String {
    let d = run.sim.diagnostics();
    let mut j = json::Object::new();
    j.num("lambda", lambda);
    j.int("n_particles", run.sim.n_particles() as i64);
    j.int("n_flow", d.n_flow as i64);
    j.int("settle_plus_average_steps", d.steps as i64);
    j.num("wall_seconds", run.seconds);
    let mut jm = json::Object::new();
    jm.num("shock_angle_deg", m.shock_angle_deg);
    jm.num("theory_angle_deg", m.theory_angle_deg);
    jm.num("density_ratio", m.density_ratio);
    jm.num("theory_density_ratio", m.theory_density_ratio);
    jm.num("thickness_rise", m.thickness_rise);
    jm.num("thickness_max_slope", m.thickness_max_slope);
    jm.num("wake_recompression", m.wake_recompression);
    jm.opt_num("wake_recovery_length", m.wake_recovery_length);
    j.obj("metrics", jm);
    j.pretty()
}

/// Convenience: does a path exist inside the artifact dir?
pub fn artifact_exists(name: &str) -> bool {
    Path::new(&artifact_dir()).join(name).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_to_quick() {
        // (No --full in the test binary's args.)
        let s = RunScale::from_args();
        assert_eq!(s, RunScale::QUICK);
    }

    #[test]
    fn tiny_wedge_run_produces_metrics() {
        let run = run_wedge(
            0.0,
            RunScale {
                density: 0.08,
                steps: 0.15,
            },
        );
        assert!(run.sim.n_particles() > 30_000);
        assert_eq!(run.field.w, 98);
        // At this tiny scale the fit may be noisy but must exist.
        assert!(run.metrics.is_some(), "shock fit failed");
    }

    #[test]
    fn artifact_roundtrip() {
        std::env::set_var("DSMC_ARTIFACTS", "/tmp/dsmc-bench-test-artifacts");
        let p = write_artifact("probe.txt", b"hello");
        assert!(p.exists());
        assert!(artifact_exists("probe.txt"));
        std::fs::remove_file(p).unwrap();
        std::env::remove_var("DSMC_ARTIFACTS");
    }
}
