//! A tiny JSON writer for experiment artifacts.
//!
//! The workspace builds offline, so instead of serde the bench harness
//! serialises its flat metric records through this insertion-ordered
//! object builder.  Only what artifacts need is supported: numbers,
//! integers, booleans, strings, nested objects and arrays thereof.

use std::fmt::Write as _;

/// One JSON value, already rendered to text.
#[derive(Clone, Debug)]
struct Rendered(String);

/// An insertion-ordered JSON object under construction.
#[derive(Clone, Debug, Default)]
pub struct Object {
    fields: Vec<(String, Rendered)>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip representation Rust offers.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        "null".into()
    }
}

impl Object {
    /// Fresh empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, key: &str, value: String) -> &mut Self {
        self.fields.push((key.to_string(), Rendered(value)));
        self
    }

    /// Add a float field.
    pub fn num(&mut self, key: &str, v: f64) -> &mut Self {
        self.push(key, fmt_f64(v))
    }

    /// Add an integer field.
    pub fn int(&mut self, key: &str, v: i64) -> &mut Self {
        self.push(key, v.to_string())
    }

    /// Add a boolean field.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.push(key, v.to_string())
    }

    /// Add a string field.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.push(key, format!("\"{}\"", escape(v)))
    }

    /// Add a float-or-null field.
    pub fn opt_num(&mut self, key: &str, v: Option<f64>) -> &mut Self {
        match v {
            Some(v) => self.num(key, v),
            None => self.push(key, "null".into()),
        }
    }

    /// Add a nested object.
    pub fn obj(&mut self, key: &str, v: Object) -> &mut Self {
        self.push(key, v.pretty())
    }

    /// Add an array of floats.
    pub fn num_array(&mut self, key: &str, vs: &[f64]) -> &mut Self {
        let items: Vec<String> = vs.iter().map(|&v| fmt_f64(v)).collect();
        self.push(key, format!("[{}]", items.join(", ")))
    }

    /// Add an array of strings.
    pub fn str_array(&mut self, key: &str, vs: &[&str]) -> &mut Self {
        let items: Vec<String> = vs.iter().map(|v| format!("\"{}\"", escape(v))).collect();
        self.push(key, format!("[{}]", items.join(", ")))
    }

    /// Add an array of nested objects.
    pub fn obj_array(&mut self, key: &str, vs: Vec<Object>) -> &mut Self {
        let items: Vec<String> = vs.into_iter().map(|o| o.pretty()).collect();
        self.push(key, format!("[{}]", items.join(", ")))
    }

    /// Render with two-space indentation.
    pub fn pretty(&self) -> String {
        if self.fields.is_empty() {
            return "{}".into();
        }
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let value = v.0.replace('\n', "\n  ");
            let comma = if i + 1 == self.fields.len() { "" } else { "," };
            let _ = writeln!(out, "  \"{}\": {}{}", escape(k), value, comma);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty_json() {
        let mut inner = Object::new();
        inner.num("x", 1.5).int("n", 7);
        let mut o = Object::new();
        o.str("name", "run \"a\"")
            .bool("ok", true)
            .opt_num("missing", None)
            .obj("inner", inner)
            .num_array("xs", &[1.0, 2.5])
            .str_array("names", &["a", "b\"c"]);
        let s = o.pretty();
        assert!(s.contains("\"names\": [\"a\", \"b\\\"c\"]"));
        assert!(s.contains("\"name\": \"run \\\"a\\\"\""));
        assert!(s.contains("\"missing\": null"));
        assert!(s.contains("\"x\": 1.5"));
        assert!(s.contains("\"xs\": [1.0, 2.5]"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(super::fmt_f64(3.0), "3.0");
        assert_eq!(super::fmt_f64(f64::NAN), "null");
    }
}
