//! The front-end permutation table.
//!
//! "The approach taken is to initialise the particles with random
//! permutations (taken from a table stored on the front end computer)".
//! The table is built once on the host with the Knuth shuffle and particles
//! are dealt entries round-robin (offset by a per-run phase so different
//! seeds deal different assignments).

use crate::perm::{knuth_shuffle, Perm5};
use crate::XorShift32;

/// A host-side table of random permutations of five.
#[derive(Clone, Debug)]
pub struct PermTable {
    entries: Vec<Perm5>,
}

impl PermTable {
    /// Default table size used by the engine; prime so that dealing entries
    /// round-robin to any power-of-two particle count cycles the whole table.
    pub const DEFAULT_LEN: usize = 1021;

    /// Build a table of `len` random permutations from `seed`.
    pub fn generate(len: usize, seed: u32) -> Self {
        assert!(len > 0, "permutation table must not be empty");
        let mut rng = XorShift32::new(seed);
        let entries = (0..len).map(|_| knuth_shuffle(&mut rng)).collect();
        Self { entries }
    }

    /// Build a table of the default size.
    pub fn generate_default(seed: u32) -> Self {
        Self::generate(Self::DEFAULT_LEN, seed)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The permutation dealt to particle `i`.
    #[inline]
    pub fn deal(&self, i: usize) -> Perm5 {
        self.entries[i % self.entries.len()]
    }

    /// Raw entries (for inspection/tests).
    pub fn entries(&self) -> &[Perm5] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::tv_distance_from_uniform;

    #[test]
    fn generates_requested_length() {
        let t = PermTable::generate(64, 1);
        assert_eq!(t.len(), 64);
        assert!(!t.is_empty());
        assert_eq!(t.entries().len(), 64);
    }

    #[test]
    fn all_entries_are_valid_permutations() {
        let t = PermTable::generate_default(99);
        assert_eq!(t.len(), PermTable::DEFAULT_LEN);
        for p in t.entries() {
            assert!(p.is_valid());
        }
    }

    #[test]
    fn deal_wraps_round_robin() {
        let t = PermTable::generate(7, 3);
        for i in 0..70 {
            assert_eq!(t.deal(i), t.deal(i + 7));
        }
    }

    #[test]
    fn different_seeds_give_different_tables() {
        let a = PermTable::generate(32, 1);
        let b = PermTable::generate(32, 2);
        let same = a
            .entries()
            .iter()
            .zip(b.entries())
            .filter(|(x, y)| x == y)
            .count();
        assert!(same < 8, "tables from different seeds nearly identical");
    }

    #[test]
    fn large_table_is_roughly_uniform() {
        let t = PermTable::generate(12_000, 5);
        let idx: Vec<usize> = t.entries().iter().map(|p| p.lehmer_index()).collect();
        let tv = tv_distance_from_uniform(&idx);
        assert!(tv < 0.1, "tv = {tv}");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn zero_length_table_panics() {
        let _ = PermTable::generate(0, 1);
    }
}
