//! Randomness substrate for the CM-2 particle simulation.
//!
//! The paper is deliberately frugal with randomness: a table of random
//! permutations lives on the front-end computer, each particle carries one
//! permutation-of-five that is refreshed by *random transpositions* (one per
//! collision), and "quick but dirty" random numbers are pulled from the
//! low-order bits of fixed-point state for the low-impact decisions (sort-key
//! mixing, sign choices, rounding corrections).
//!
//! This crate provides both that frugal machinery and a clean, explicitly
//! seeded per-particle stream ([`XorShift32`]) so the engine can run in either
//! mode and the difference can be measured (`ablation` benches).
//!
//! * [`XorShift32`], [`Lcg32`] — tiny per-particle generators (4 bytes of
//!   state, branch-free), the moral equivalent of a per-virtual-processor
//!   random stream.
//! * [`SplitMix64`] — host-side seeder used to derive decorrelated particle
//!   seeds from one master seed (determinism-by-seed is a library guarantee).
//! * [`Perm5`] — a permutation of {0..4} packed in 16 bits, with the paper's
//!   top-transposition refresh.
//! * [`PermTable`] — the front-end table of random permutations used to
//!   initialise particles.

pub mod perm;
pub mod table;

pub use perm::Perm5;
pub use table::PermTable;

/// Marsaglia xorshift32: the per-particle generator.
///
/// Never in the zero state (seeds of 0 are remapped), period 2³²−1, and
/// cheap enough to keep one per particle — the shared-memory analogue of the
/// CM-2's per-processor randomness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XorShift32 {
    state: u32,
}

impl XorShift32 {
    /// Create a generator; a zero seed is remapped to a fixed non-zero value.
    #[inline]
    pub const fn new(seed: u32) -> Self {
        Self {
            state: if seed == 0 { 0x9E37_79B9 } else { seed },
        }
    }

    /// Next 32 uniform bits.
    #[inline(always)]
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Next `n` uniform bits (`n` ≤ 32), taken from the high end of the word
    /// (the high bits of a xorshift word are better distributed than the low).
    #[inline(always)]
    pub fn next_bits(&mut self, n: u32) -> u32 {
        debug_assert!((1..=32).contains(&n));
        self.next_u32() >> (32 - n)
    }

    /// Uniform value in `[0, bound)` by the multiply-shift (Lemire) method —
    /// no division, slight modulo bias below 2⁻³² · bound which is irrelevant
    /// at simulation scale.
    #[inline(always)]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        ((self.next_u32() as u64 * bound as u64) >> 32) as u32
    }

    /// One uniform random bit.
    #[inline(always)]
    pub fn next_bit(&mut self) -> u32 {
        self.next_u32() >> 31
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline(always)]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u32() as f64) * (1.0 / 4_294_967_296.0)
    }

    /// Current raw state (for serialisation in checkpoints).
    #[inline]
    pub const fn state(&self) -> u32 {
        self.state
    }
}

/// Numerical-Recipes-style 32-bit LCG, the other classic CM-era generator.
///
/// Kept as an alternative stream for sensitivity tests: if a result depends
/// on which cheap generator is used, it is not converged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lcg32 {
    state: u32,
}

impl Lcg32 {
    /// Multiplier (Numerical Recipes "quick and dirty" constants).
    pub const A: u32 = 1_664_525;
    /// Increment.
    pub const C: u32 = 1_013_904_223;

    /// Create a generator; any seed is valid for an LCG.
    #[inline]
    pub const fn new(seed: u32) -> Self {
        Self { state: seed }
    }

    /// Next 32-bit state. Low bits of an LCG have short periods; callers
    /// should prefer [`Lcg32::next_bits`], which uses the high end.
    #[inline(always)]
    pub fn next_u32(&mut self) -> u32 {
        self.state = self.state.wrapping_mul(Self::A).wrapping_add(Self::C);
        self.state
    }

    /// Next `n` bits from the high (well-mixed) end of the word.
    #[inline(always)]
    pub fn next_bits(&mut self, n: u32) -> u32 {
        debug_assert!((1..=32).contains(&n));
        self.next_u32() >> (32 - n)
    }
}

/// SplitMix64: host-side seed expander.
///
/// Derives arbitrarily many decorrelated 32/64-bit seeds from one master
/// seed.  Used once at initialisation; never in the per-step path.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a master seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next non-zero 32-bit seed (suitable for [`XorShift32`]).
    #[inline]
    pub fn next_seed32(&mut self) -> u32 {
        loop {
            let s = (self.next_u64() >> 32) as u32;
            if s != 0 {
                return s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_zero_seed_is_remapped() {
        let mut a = XorShift32::new(0);
        let mut b = XorShift32::new(0x9E37_79B9);
        assert_eq!(a.next_u32(), b.next_u32());
        assert_ne!(a.next_u32(), 0);
    }

    #[test]
    fn xorshift_is_deterministic_per_seed() {
        let mut a = XorShift32::new(42);
        let mut b = XorShift32::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = XorShift32::new(43);
        let first42 = XorShift32::new(42).next_u32();
        let differs = (0..100).any(|_| c.next_u32() != first42);
        assert!(differs);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = XorShift32::new(7);
        for bound in [1u32, 2, 3, 5, 120, 1 << 20] {
            for _ in 0..500 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut r = XorShift32::new(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
    }

    #[test]
    fn next_bit_is_roughly_fair() {
        let mut r = XorShift32::new(1234);
        let ones: u32 = (0..10_000).map(|_| r.next_bit()).sum();
        assert!((4_600..5_400).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = XorShift32::new(5);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            acc += v;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn lcg_matches_reference_recurrence() {
        let mut r = Lcg32::new(1);
        let expected = 1u32.wrapping_mul(Lcg32::A).wrapping_add(Lcg32::C);
        assert_eq!(r.next_u32(), expected);
    }

    #[test]
    fn lcg_high_bits_are_fair() {
        let mut r = Lcg32::new(99);
        let ones: u32 = (0..10_000).map(|_| r.next_bits(1)).sum();
        assert!((4_600..5_400).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn splitmix_seeds_are_distinct_and_nonzero() {
        let mut s = SplitMix64::new(0);
        let seeds: Vec<u32> = (0..1000).map(|_| s.next_seed32()).collect();
        assert!(seeds.iter().all(|&x| x != 0));
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "collision among 1000 seeds");
    }

    #[test]
    fn generators_pass_a_crude_equidistribution_check() {
        // 16 buckets of the top 4 bits should each get ~1/16 of the draws.
        let mut r = XorShift32::new(2024);
        let mut hist = [0u32; 16];
        let n = 160_000;
        for _ in 0..n {
            hist[r.next_bits(4) as usize] += 1;
        }
        for (i, &h) in hist.iter().enumerate() {
            let expect = n / 16;
            assert!(
                (h as i64 - expect as i64).abs() < expect as i64 / 10,
                "bucket {i}: {h} vs {expect}"
            );
        }
    }
}
